"""Lint: no failpoint may be left permanently armed in library code.

Two checks, run by CI after the test suite:

1. **Static** — no module under ``src/repro`` outside ``repro/chaos``
   calls ``.arm(`` / ``.scoped(`` on a failpoint registry.  Arming belongs
   to tests, examples and chaos schedules; library code only *declares*
   failpoints via ``failpoint(name)`` hooks.
2. **Dynamic** — importing every ``repro`` module leaves the process-wide
   registry empty: no import-time side effect arms anything.

Exit status 0 when clean; 1 with a report of offenders otherwise.
"""

from __future__ import annotations

import importlib
import pkgutil
import re
import sys
from pathlib import Path

#: Call patterns that arm a failpoint.  The word-boundary on ``arm``/
#: ``scoped`` keeps e.g. ``swarm(`` or ``disarm(`` from matching.
_ARM_CALL = re.compile(r"\.\s*(?:arm|scoped)\s*\(")

#: Library paths allowed to reference arming: the chaos package itself
#: (schedules arm failpoints by design) and this linter.
_ALLOWED = ("repro/chaos/", "repro/tools/lint_failpoints.py")


def find_static_offenders(src_root: Path) -> list[str]:
    """Lines in library code that arm a failpoint; empty when clean."""
    offenders: list[str] = []
    for path in sorted(src_root.rglob("*.py")):
        relative = path.relative_to(src_root).as_posix()
        if any(relative.startswith(prefix) for prefix in _ALLOWED):
            continue
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            stripped = line.split("#", 1)[0]
            if _ARM_CALL.search(stripped):
                offenders.append(f"{relative}:{lineno}: {line.strip()}")
    return offenders


def find_import_time_armed() -> set[str]:
    """Failpoints armed after importing every ``repro`` module."""
    import repro
    from repro.chaos.failpoints import registry

    for module in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        importlib.import_module(module.name)
    return registry().armed_names()


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    if args:
        src_root = Path(args[0])
    else:
        src_root = Path(__file__).resolve().parents[2]
    offenders = find_static_offenders(src_root)
    armed = find_import_time_armed()
    if offenders:
        print("failpoint lint: library code arms failpoints:")
        for offender in offenders:
            print(f"  {offender}")
    if armed:
        print(
            "failpoint lint: armed after importing every repro module: "
            f"{sorted(armed)}"
        )
    if offenders or armed:
        return 1
    print("failpoint lint: OK (no armed failpoints in library code)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
