"""User-profile updates: the §4.2 incremental-processing workload.

"This is particularly important in scenarios in which only a small
percentage of data changes periodically, such as user profile updates."

The generator models a member base where an initial snapshot exists and then
small update deltas arrive: each period, ``churn_fraction`` of users change
one field.  E3 sweeps the history length while keeping the delta fixed to
show full-recompute cost growing linearly while incremental stays flat.

Values are keyed by user id, so the feed is compactable: the *live* state is
one record per user regardless of update count (E4's workload).
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.common.errors import ConfigError

HEADLINE_WORDS = (
    "engineer", "scientist", "manager", "director", "analyst",
    "designer", "founder", "consultant", "architect", "recruiter",
)
INDUSTRIES = (
    "software", "finance", "healthcare", "education", "retail",
    "manufacturing", "media", "energy",
)
MUTABLE_FIELDS = ("headline", "industry", "location", "connections")
LOCATIONS = (
    "San Francisco", "New York", "London", "Bangalore", "Berlin",
    "Toronto", "Sydney", "singapore",  # deliberately mis-cased: cleaning fodder
)


class ProfileUpdateGenerator:
    """Yields profile snapshot + update-delta events keyed by user id."""

    def __init__(
        self,
        users: int = 1000,
        churn_fraction: float = 0.02,
        seed: int = 123,
    ) -> None:
        if users <= 0:
            raise ConfigError("users must be > 0")
        if not 0 < churn_fraction <= 1:
            raise ConfigError("churn_fraction must be in (0, 1]")
        self.users = users
        self.churn_fraction = churn_fraction
        self._rng = random.Random(seed)

    def _user_id(self, i: int) -> str:
        return f"member-{i:07d}"

    def _random_profile(self, user_id: str, timestamp: float) -> dict:
        return {
            "user": user_id,
            "headline": (
                f"{self._rng.choice(HEADLINE_WORDS)} of "
                f"{self._rng.choice(INDUSTRIES)}"
            ),
            "industry": self._rng.choice(INDUSTRIES),
            "location": self._rng.choice(LOCATIONS),
            "connections": self._rng.randint(1, 2000),
            "timestamp": timestamp,
        }

    def snapshot(self, timestamp: float = 0.0) -> Iterator[dict]:
        """Initial full profile for every user."""
        for i in range(self.users):
            yield self._random_profile(self._user_id(i), timestamp)

    def delta(self, timestamp: float) -> Iterator[dict]:
        """One update period: ``churn_fraction`` of users change one field."""
        changed = self._rng.sample(
            range(self.users), max(1, int(self.users * self.churn_fraction))
        )
        for i in sorted(changed):
            user_id = self._user_id(i)
            profile = self._random_profile(user_id, timestamp)
            field = self._rng.choice(MUTABLE_FIELDS)
            yield {
                "user": user_id,
                field: profile[field],
                "timestamp": timestamp,
            }

    def deltas(self, periods: int, start: float = 1.0, spacing: float = 1.0) -> Iterator[dict]:
        """Several consecutive update periods."""
        for p in range(periods):
            yield from self.delta(start + p * spacing)
