"""REST call-span events: the §5.1 call-graph-assembly use case.

"dynamic web pages are built from thousands of REST calls, which are
executed by distributed machines.  Each call can subsequently trigger other
calls ... Liquid records each event produced by the REST calls and stores
them in the messaging layer with a unique id per user call ... The
processing layer processes these events to assemble the call graph."

The generator emits span events for synthetic request trees (random fan-out,
bounded depth), each span carrying ``request_id`` (shared by the whole
tree), ``span_id``, ``parent_id``, service name and duration.  A designated
*slow service* can be injected to give the assembled graphs something to
flag.  :func:`assemble_call_tree` is the reference (offline) assembler used
to verify the streaming one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

import networkx as nx

from repro.common.errors import ConfigError
from repro.workloads.generators import EventClock

SERVICES = (
    "frontend",
    "profile-svc",
    "feed-svc",
    "search-svc",
    "ads-svc",
    "graph-svc",
    "media-svc",
    "notify-svc",
)


@dataclass(frozen=True)
class SlowService:
    """Injected problem: ``service`` responds ``factor``× slower."""

    service: str
    factor: float = 10.0

    def __post_init__(self) -> None:
        if self.service not in SERVICES:
            raise ConfigError(f"unknown service {self.service!r}")
        if self.factor <= 1.0:
            raise ConfigError("slow factor must be > 1")


class CallGraphEventGenerator:
    """Yields span events grouped into request trees."""

    def __init__(
        self,
        rate_per_second: float = 50.0,
        max_depth: int = 3,
        max_fanout: int = 3,
        base_duration_ms: float = 8.0,
        slow: SlowService | None = None,
        seed: int = 99,
    ) -> None:
        if max_depth < 1 or max_fanout < 1:
            raise ConfigError("max_depth and max_fanout must be >= 1")
        self._event_clock = EventClock(rate_per_second, seed=seed)
        self._rng = random.Random(seed + 1)
        self.max_depth = max_depth
        self.max_fanout = max_fanout
        self.base_duration_ms = base_duration_ms
        self.slow = slow
        self._request_counter = 0

    def requests(self, count: int) -> Iterator[list[dict]]:
        """Generate ``count`` complete request trees (lists of span events)."""
        for _ in range(count):
            self._request_counter += 1
            request_id = f"req-{self._request_counter:08d}"
            timestamp = self._event_clock.next_timestamp()
            spans: list[dict] = []
            self._emit_span(
                request_id, "frontend", None, 0, timestamp, spans
            )
            yield spans

    def events(self, request_count: int) -> Iterator[dict]:
        """Flatten request trees into a single span-event stream."""
        for spans in self.requests(request_count):
            yield from spans

    def _emit_span(
        self,
        request_id: str,
        service: str,
        parent_id: str | None,
        depth: int,
        timestamp: float,
        spans: list[dict],
    ) -> None:
        span_id = f"{request_id}:{len(spans):04d}"
        duration = self._rng.lognormvariate(0, 0.5) * self.base_duration_ms
        if self.slow is not None and service == self.slow.service:
            duration *= self.slow.factor
        spans.append(
            {
                "request_id": request_id,
                "span_id": span_id,
                "parent_id": parent_id,
                "service": service,
                "duration_ms": round(duration, 3),
                "timestamp": timestamp,
            }
        )
        if depth >= self.max_depth:
            return
        for _ in range(self._rng.randint(0, self.max_fanout)):
            child_service = self._rng.choice(
                [s for s in SERVICES if s != service]
            )
            self._emit_span(
                request_id,
                child_service,
                span_id,
                depth + 1,
                timestamp + duration / 1000.0,
                spans,
            )


def assemble_call_tree(spans: list[dict]) -> "nx.DiGraph":
    """Reference assembler: spans of ONE request into a parent→child tree."""
    if not spans:
        raise ConfigError("no spans to assemble")
    request_ids = {span["request_id"] for span in spans}
    if len(request_ids) != 1:
        raise ConfigError(f"spans from multiple requests: {sorted(request_ids)}")
    graph = nx.DiGraph()
    for span in spans:
        graph.add_node(
            span["span_id"],
            service=span["service"],
            duration_ms=span["duration_ms"],
        )
    for span in spans:
        if span["parent_id"] is not None:
            graph.add_edge(span["parent_id"], span["span_id"])
    return graph


def critical_path_ms(tree: "nx.DiGraph") -> float:
    """Longest root-to-leaf duration sum: the request's critical path."""
    roots = [n for n, d in tree.in_degree() if d == 0]
    best = 0.0
    for root in roots:
        for node in tree.nodes:
            if tree.out_degree(node) == 0:
                try:
                    path = nx.shortest_path(tree, root, node)
                except nx.NetworkXNoPath:
                    continue
                total = sum(tree.nodes[p]["duration_ms"] for p in path)
                best = max(best, total)
    return best
