"""Operational metrics and logs: the §5.1 operational-analysis use case.

"Analyzing operational data, such as metrics, alerts and logs, is crucial
to react to potential problems quickly ... With Liquid, integrating new
data, such as crash reports from mobile phones, is straightforward."

The generator emits host-level metric samples plus log lines, with an
injectable *error burst* on one host (the incident the pipeline must catch).
A second event type (``mobile_crash``) demonstrates the paper's "just add a
new metric" point: it reuses the same transport without schema migration.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.common.errors import ConfigError
from repro.workloads.generators import EventClock

METRICS = ("cpu_pct", "heap_mb", "qps", "p99_ms")
SEVERITIES = ("INFO", "WARN", "ERROR")


@dataclass(frozen=True)
class ErrorBurst:
    """Injected incident: ``host`` logs mostly errors from ``at_time``."""

    host: str
    at_time: float
    error_rate: float = 0.8

    def __post_init__(self) -> None:
        if not 0 < self.error_rate <= 1:
            raise ConfigError("error_rate must be in (0, 1]")


class OperationalEventGenerator:
    """Yields mixed metric/log/crash events keyed by host."""

    def __init__(
        self,
        hosts: int = 20,
        rate_per_second: float = 200.0,
        burst: ErrorBurst | None = None,
        mobile_crash_fraction: float = 0.01,
        seed: int = 77,
    ) -> None:
        if hosts <= 0:
            raise ConfigError("hosts must be > 0")
        if not 0 <= mobile_crash_fraction < 1:
            raise ConfigError("mobile_crash_fraction must be in [0, 1)")
        self.hosts = [f"host-{i:03d}" for i in range(hosts)]
        self._event_clock = EventClock(rate_per_second, seed=seed)
        self._rng = random.Random(seed + 1)
        self.burst = burst
        self.mobile_crash_fraction = mobile_crash_fraction

    def events(self, count: int) -> Iterator[dict]:
        for _ in range(count):
            timestamp = self._event_clock.next_timestamp()
            roll = self._rng.random()
            if roll < self.mobile_crash_fraction:
                yield {
                    "type": "mobile_crash",
                    "host": "mobile-gateway",
                    "app_version": f"9.{self._rng.randint(0, 4)}.{self._rng.randint(0, 9)}",
                    "os": self._rng.choice(("android", "ios")),
                    "timestamp": timestamp,
                }
            elif roll < 0.5:
                host = self._rng.choice(self.hosts)
                metric = self._rng.choice(METRICS)
                yield {
                    "type": "metric",
                    "host": host,
                    "metric": metric,
                    "value": round(self._metric_value(metric), 3),
                    "timestamp": timestamp,
                }
            else:
                host = self._rng.choice(self.hosts)
                severity = self._severity(host, timestamp)
                yield {
                    "type": "log",
                    "host": host,
                    "severity": severity,
                    "message": f"{severity.lower()} event on {host}",
                    "timestamp": timestamp,
                }

    def _metric_value(self, metric: str) -> float:
        base = {"cpu_pct": 40.0, "heap_mb": 900.0, "qps": 1500.0, "p99_ms": 45.0}
        return self._rng.lognormvariate(0, 0.25) * base[metric]

    def _severity(self, host: str, timestamp: float) -> str:
        if (
            self.burst is not None
            and host == self.burst.host
            and timestamp >= self.burst.at_time
            and self._rng.random() < self.burst.error_rate
        ):
            return "ERROR"
        return self._rng.choices(SEVERITIES, weights=(0.85, 0.12, 0.03), k=1)[0]
