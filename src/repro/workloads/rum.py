"""Real-user-monitoring (RUM) events: the §5.1 site-speed use case.

"when a client visits a webpage, an event is created that contains a
timestamp, the page or resource loaded, the time that it took to load, the
IP address location of the requesting client and the content delivery
network (CDN) used to serve the resource."

The generator produces exactly that schema, with Zipf-popular pages, a bounded
set of regions and CDNs, sessionized users, and an optional *injected
anomaly*: one CDN's load times degrade by a factor after a given event time,
which the anomaly-detection pipeline must surface (E-examples and tests
assert it does).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.common.errors import ConfigError
from repro.workloads.generators import EventClock, KeyPool

REGIONS = ("us-east", "us-west", "eu-west", "eu-central", "ap-south", "ap-east")
CDNS = ("cdn-akamai", "cdn-fastly", "cdn-edgecast")


@dataclass(frozen=True)
class CdnDegradation:
    """An injected incident: ``cdn`` slows by ``factor`` from ``at_time``."""

    cdn: str
    at_time: float
    factor: float = 5.0

    def __post_init__(self) -> None:
        if self.cdn not in CDNS:
            raise ConfigError(f"unknown CDN {self.cdn!r}; known: {CDNS}")
        if self.factor <= 1.0:
            raise ConfigError("degradation factor must be > 1")


class RumEventGenerator:
    """Yields page-load events as dicts keyed by user id."""

    def __init__(
        self,
        users: int = 500,
        pages: int = 50,
        rate_per_second: float = 100.0,
        base_load_ms: float = 120.0,
        degradation: CdnDegradation | None = None,
        seed: int = 42,
    ) -> None:
        self._users = KeyPool(users, prefix="user", skew=0.8, seed=seed)
        self._pages = KeyPool(pages, prefix="/page", skew=1.1, seed=seed + 1)
        self._event_clock = EventClock(rate_per_second, seed=seed + 2)
        self._rng = random.Random(seed + 3)
        self.base_load_ms = base_load_ms
        self.degradation = degradation

    def events(self, count: int) -> Iterator[dict]:
        """Generate ``count`` events in event-time order."""
        for _ in range(count):
            timestamp = self._event_clock.next_timestamp()
            cdn = self._rng.choice(CDNS)
            load_ms = self._rng.lognormvariate(0, 0.4) * self.base_load_ms
            if (
                self.degradation is not None
                and cdn == self.degradation.cdn
                and timestamp >= self.degradation.at_time
            ):
                load_ms *= self.degradation.factor
            yield {
                "user": self._users.pick(),
                "page": self._pages.pick(),
                "load_time_ms": round(load_ms, 3),
                "region": self._rng.choice(REGIONS),
                "cdn": cdn,
                "timestamp": timestamp,
            }
