"""Deterministic building blocks for synthetic workloads.

The paper's traffic is LinkedIn production data we cannot have; these
generators reproduce the *distributional* properties the mechanisms depend
on — Zipf-skewed keys (a few hot users/pages dominate), Poisson arrivals,
and bounded cardinality dimensions — with explicit seeds so every test and
benchmark is reproducible.
"""

from __future__ import annotations

import random
from typing import Iterator, Sequence

from repro.common.errors import ConfigError


def zipf_weights(n: int, skew: float = 1.0) -> list[float]:
    """Unnormalized Zipf weights: weight(rank) = 1 / rank**skew."""
    if n <= 0:
        raise ConfigError("n must be > 0")
    if skew < 0:
        raise ConfigError("skew must be >= 0")
    return [1.0 / (rank**skew) for rank in range(1, n + 1)]


class KeyPool:
    """A fixed population of keys drawn with Zipf skew.

    ``skew=0`` is uniform; ``skew≈1`` matches web-traffic popularity.
    """

    def __init__(
        self,
        size: int,
        prefix: str = "key",
        skew: float = 1.0,
        seed: int = 7,
    ) -> None:
        if size <= 0:
            raise ConfigError("size must be > 0")
        self.keys = [f"{prefix}-{i:06d}" for i in range(size)]
        self._weights = zipf_weights(size, skew)
        self._rng = random.Random(seed)

    def pick(self) -> str:
        return self._rng.choices(self.keys, weights=self._weights, k=1)[0]

    def pick_many(self, k: int) -> list[str]:
        return self._rng.choices(self.keys, weights=self._weights, k=k)

    def uniform(self) -> str:
        return self._rng.choice(self.keys)

    def __len__(self) -> int:
        return len(self.keys)


class EventClock:
    """Event-time source with Poisson (exponential inter-arrival) spacing."""

    def __init__(self, rate_per_second: float, start: float = 0.0, seed: int = 11) -> None:
        if rate_per_second <= 0:
            raise ConfigError("rate_per_second must be > 0")
        self.rate = rate_per_second
        self.now = start
        self._rng = random.Random(seed)

    def next_timestamp(self) -> float:
        self.now += self._rng.expovariate(self.rate)
        return self.now


def pick_cycle(values: Sequence[str], seed: int = 13) -> Iterator[str]:
    """Infinite deterministic pseudo-random cycle over ``values``."""
    rng = random.Random(seed)
    while True:
        yield rng.choice(list(values))
