"""Synthetic workload generators for the paper's §5.1 use cases."""

from repro.workloads.callgraph import (
    SERVICES,
    CallGraphEventGenerator,
    SlowService,
    assemble_call_tree,
    critical_path_ms,
)
from repro.workloads.generators import EventClock, KeyPool, zipf_weights
from repro.workloads.oplogs import (
    METRICS,
    SEVERITIES,
    ErrorBurst,
    OperationalEventGenerator,
)
from repro.workloads.profiles import MUTABLE_FIELDS, ProfileUpdateGenerator
from repro.workloads.rum import CDNS, REGIONS, CdnDegradation, RumEventGenerator

__all__ = [
    "KeyPool",
    "EventClock",
    "zipf_weights",
    "RumEventGenerator",
    "CdnDegradation",
    "REGIONS",
    "CDNS",
    "CallGraphEventGenerator",
    "SlowService",
    "assemble_call_tree",
    "critical_path_ms",
    "SERVICES",
    "ProfileUpdateGenerator",
    "MUTABLE_FIELDS",
    "OperationalEventGenerator",
    "ErrorBurst",
    "METRICS",
    "SEVERITIES",
]
