"""Typed, frozen client configuration objects (the stable public API).

The client constructors grew organically: a dozen loose keyword arguments on
:class:`~repro.messaging.producer.Producer` and
:class:`~repro.messaging.consumer.Consumer`, silently swallowing typos.
These dataclasses make the supported surface explicit, in the mold of
:class:`~repro.processing.job.JobConfig`:

* construction validates every field once, in ``__post_init__``;
* :meth:`from_kwargs` rejects unknown keywords with
  :class:`~repro.common.errors.ConfigError` (not ``TypeError``), so the
  legacy keyword path of ``Producer(cluster, **kwargs)`` /
  ``Liquid.producer(**kwargs)`` gets the same checking;
* instances are frozen, so a config can be shared between clients and
  snapshotted by the public-API tests.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Callable

from repro.common.compression import parse_compression
from repro.common.errors import ConfigError

#: Partitioner strategies (canonical home; re-exported by the producer).
PARTITIONER_HASH = "hash"
PARTITIONER_ROUND_ROBIN = "round_robin"

#: Consumer position-reset policies.
AUTO_OFFSET_RESETS = ("earliest", "latest")

#: Consumer isolation levels.
ISOLATION_LEVELS = ("read_uncommitted", "read_committed")


def reject_unknown_options(cls: type, kwargs: dict[str, Any]) -> None:
    """Raise :class:`ConfigError` (not ``TypeError``) for unknown keywords.

    Shared by every ``from_kwargs`` constructor — the client configs here
    and the job-layer :class:`~repro.processing.job.JobConfig` /
    :class:`~repro.processing.job.StoreConfig` — so typos fail the same way
    everywhere, with the supported surface listed.
    """
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(kwargs) - known)
    if unknown:
        raise ConfigError(
            f"unknown {cls.__name__} option(s): {', '.join(unknown)}; "
            f"supported: {', '.join(sorted(known))}"
        )


@dataclass(frozen=True)
class ProducerConfig:
    """Static configuration of one :class:`~repro.messaging.producer.Producer`."""

    acks: str = "leader"
    partitioner: str | Callable[[Any, int], int] = PARTITIONER_HASH
    linger_messages: int = 1
    max_retries: int = 3
    idempotent: bool = False
    client_id: str | None = None
    key_serde: Any = None
    value_serde: Any = None
    retry_backoff: float = 0.05
    retry_backoff_max: float = 2.0
    retry_jitter_seed: int | None = None
    #: Batch compression spec: ``"none"``, ``"zlib"``, or ``"zlib:N"``
    #: (N in 1..9).  Applies per linger batch; see repro.common.compression.
    compression: str = "none"

    def __post_init__(self) -> None:
        parse_compression(self.compression)  # validate spec early
        if self.linger_messages < 1:
            raise ConfigError("linger_messages must be >= 1")
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.retry_backoff < 0 or self.retry_backoff_max < self.retry_backoff:
            raise ConfigError(
                "need 0 <= retry_backoff <= retry_backoff_max"
            )
        if isinstance(self.partitioner, str) and self.partitioner not in (
            PARTITIONER_HASH,
            PARTITIONER_ROUND_ROBIN,
        ):
            raise ConfigError(f"unknown partitioner {self.partitioner!r}")

    @classmethod
    def from_kwargs(cls, **kwargs: Any) -> "ProducerConfig":
        """Build from legacy keywords; unknown keywords raise ConfigError."""
        reject_unknown_options(cls, kwargs)
        return cls(**kwargs)


@dataclass(frozen=True)
class ConsumerConfig:
    """Static configuration of one :class:`~repro.messaging.consumer.Consumer`.

    ``group`` is part of the config (it is identity, not wiring); the group
    *coordinator* stays a constructor argument because it is a live runtime
    dependency owned by the deployment.
    """

    group: str | None = None
    auto_offset_reset: str = "earliest"
    max_poll_messages: int = 100
    isolation_level: str = "read_uncommitted"
    client_id: str | None = None
    key_serde: Any = None
    value_serde: Any = None
    #: Prefetch sessions: after serving a poll, pre-issue the next fetch so
    #: its (simulated) latency overlaps the application's processing time.
    prefetch: bool = False

    def __post_init__(self) -> None:
        if self.auto_offset_reset not in AUTO_OFFSET_RESETS:
            raise ConfigError(
                f"auto_offset_reset must be one of {AUTO_OFFSET_RESETS}, "
                f"got {self.auto_offset_reset!r}"
            )
        if self.isolation_level not in ISOLATION_LEVELS:
            raise ConfigError(
                f"isolation_level must be one of {ISOLATION_LEVELS}, "
                f"got {self.isolation_level!r}"
            )
        if self.max_poll_messages < 1:
            raise ConfigError("max_poll_messages must be >= 1")

    @classmethod
    def from_kwargs(cls, **kwargs: Any) -> "ConsumerConfig":
        """Build from legacy keywords; unknown keywords raise ConfigError."""
        reject_unknown_options(cls, kwargs)
        return cls(**kwargs)
