"""The offset manager: metadata-based data access (§3.1, §4.2).

"The messaging layer uses a highly-available, logically-centralized offset
manager to maintain annotations on the data, which can be queried by
clients.  For example, consumers can checkpoint their last consumed offsets
to save their progress; after failure, they can ask for the last data that
they processed.  To re-process data, clients can include metadata, such as
timestamps, with the offsets and retrieve data according to these
previously-stored timestamps."

Commits are durably written to an internal *compacted* topic
(``__liquid_offsets``), mirroring Kafka's ``__consumer_offsets`` design: the
latest commit per (group, partition) survives compaction, so recovery replays
a log whose size is bounded by the number of live group-partitions rather
than the number of commits ever made (E4's mechanism applied to the offset
manager itself).

An in-memory commit *history* additionally supports the paper's richer
annotation queries — "the software version that consumed a given offset, or
the timestamp at which data was read" — which power incremental processing
(§4.2) and rewind-on-algorithm-change (§5.1 data cleaning).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.clock import Clock
from repro.common.errors import ConfigError
from repro.common.records import TopicPartition

#: Name of the internal topic backing the offset manager.
OFFSETS_TOPIC = "__liquid_offsets"


@dataclass(frozen=True)
class OffsetCommit:
    """One checkpoint: group consumed ``partition`` up to ``offset``.

    ``offset`` is the *next* offset to consume (Kafka convention).
    ``metadata`` carries arbitrary annotations (software version, watermark
    timestamps, job run ids, ...).
    """

    group: str
    partition: TopicPartition
    offset: int
    committed_at: float
    metadata: dict[str, Any] = field(default_factory=dict)


class OffsetManager:
    """Checkpoint store with annotation queries.

    ``durable_append`` is injected by the messaging cluster: it writes a
    commit record to the internal compacted topic.  Tests can run the manager
    standalone by leaving it unset.
    """

    def __init__(
        self,
        clock: Clock,
        durable_append: Callable[[Any, Any], None] | None = None,
        history_limit: int = 10_000,
    ) -> None:
        if history_limit <= 0:
            raise ConfigError("history_limit must be > 0")
        self.clock = clock
        self._durable_append = durable_append
        self._history_limit = history_limit
        self._latest: dict[tuple[str, TopicPartition], OffsetCommit] = {}
        self._history: dict[tuple[str, TopicPartition], list[OffsetCommit]] = {}

    # -- commit / fetch ------------------------------------------------------------

    def commit(
        self,
        group: str,
        partition: TopicPartition,
        offset: int,
        metadata: dict[str, Any] | None = None,
    ) -> OffsetCommit:
        """Checkpoint ``group``'s position on ``partition``."""
        if offset < 0:
            raise ConfigError(f"offset must be >= 0, got {offset}")
        commit = OffsetCommit(
            group=group,
            partition=partition,
            offset=offset,
            committed_at=self.clock.now(),
            metadata=dict(metadata) if metadata else {},
        )
        key = (group, partition)
        self._latest[key] = commit
        history = self._history.setdefault(key, [])
        history.append(commit)
        if len(history) > self._history_limit:
            del history[: len(history) - self._history_limit]
        if self._durable_append is not None:
            self._durable_append(
                f"{group}:{partition}",
                {
                    "group": group,
                    "topic": partition.topic,
                    "partition": partition.partition,
                    "offset": offset,
                    "committed_at": commit.committed_at,
                    "metadata": commit.metadata,
                },
            )
        return commit

    def fetch(self, group: str, partition: TopicPartition) -> OffsetCommit | None:
        """Latest commit for (group, partition), or None if never committed."""
        return self._latest.get((group, partition))

    def fetch_group(self, group: str) -> dict[TopicPartition, OffsetCommit]:
        """All latest commits of one group."""
        return {
            partition: commit
            for (g, partition), commit in self._latest.items()
            if g == group
        }

    # -- annotation queries (§4.2) --------------------------------------------------

    def history(self, group: str, partition: TopicPartition) -> list[OffsetCommit]:
        """Commit history, oldest first (bounded by ``history_limit``)."""
        return list(self._history.get((group, partition), []))

    def offset_at_time(
        self, group: str, partition: TopicPartition, timestamp: float
    ) -> OffsetCommit | None:
        """Last commit made at or before ``timestamp``.

        This answers "where was this consumer at time T?", the rewind
        primitive used when a bad deploy must be rolled back to the data it
        had processed before.
        """
        best: OffsetCommit | None = None
        for commit in self._history.get((group, partition), []):
            if commit.committed_at <= timestamp:
                best = commit
            else:
                break
        return best

    def offset_for_annotation(
        self,
        group: str,
        partition: TopicPartition,
        key: str,
        value: Any,
    ) -> OffsetCommit | None:
        """Last commit whose metadata has ``key == value``.

        E.g. ``offset_for_annotation(g, tp, "software_version", "v1")``
        returns where the v1 algorithm got to — the point from which the v2
        re-processing job should rewind (§5.1 data cleaning use case).
        """
        for commit in reversed(self._history.get((group, partition), [])):
            if commit.metadata.get(key) == value:
                return commit
        return None

    def consumption_deltas(
        self, group: str, partition: TopicPartition
    ) -> list[tuple[float, int]]:
        """Per-commit progress: (elapsed seconds, offsets advanced) pairs.

        Derived from consecutive commits in the history; the raw material
        for consumption-rate estimates (an
        :class:`~repro.elasticity.lagmonitor.Ewma` over ``advance/elapsed``
        is the rate the lag report and autoscaler use).  Same-instant or
        backward commits yield no delta.
        """
        deltas: list[tuple[float, int]] = []
        history = self._history.get((group, partition), [])
        for prev, cur in zip(history, history[1:]):
            elapsed = cur.committed_at - prev.committed_at
            advanced = cur.offset - prev.offset
            if elapsed > 0 and advanced >= 0:
                deltas.append((elapsed, advanced))
        return deltas

    def find(
        self,
        group: str,
        partition: TopicPartition,
        predicate: Callable[[OffsetCommit], bool],
    ) -> OffsetCommit | None:
        """Last commit matching an arbitrary predicate."""
        for commit in reversed(self._history.get((group, partition), [])):
            if predicate(commit):
                return commit
        return None

    # -- recovery ----------------------------------------------------------------------

    def recover_from_records(self, records: list[dict[str, Any]]) -> int:
        """Rebuild the latest-commit map from the internal topic's records.

        Called after an offset-manager restart; the topic is compacted so
        this replays one record per live (group, partition).  History is not
        recovered (it was compacted away) — a documented trade-off.
        """
        self._latest.clear()
        self._history.clear()
        count = 0
        for record in records:
            partition = TopicPartition(record["topic"], record["partition"])
            commit = OffsetCommit(
                group=record["group"],
                partition=partition,
                offset=record["offset"],
                committed_at=record["committed_at"],
                metadata=dict(record.get("metadata", {})),
            )
            key = (commit.group, partition)
            self._latest[key] = commit
            self._history.setdefault(key, []).append(commit)
            count += 1
        return count

    def groups(self) -> set[str]:
        return {group for (group, _tp) in self._latest}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"OffsetManager(entries={len(self._latest)})"
