"""The messaging layer facade: a simulated Kafka cluster (§3.1, §4).

Owns the brokers, the coordinator/controller pair, the replication loop, and
the offset manager, and exposes the produce/fetch/metadata surface that
producers, consumers and the processing layer use.  One instance corresponds
to one of the paper's messaging clusters.

Durability semantics follow §4.3: ``acks`` selects the durability/latency
trade-off —

* ``"none"``  — fire-and-forget (minimum durability, minimum latency);
* ``"leader"`` — acknowledged after the leader's append (Kafka acks=1);
* ``"all"``   — acknowledged after every in-sync replica has the data
  (maximum durability; rejected if the ISR is below ``min_insync_replicas``).

Delivery is at-least-once: producers retry on transient errors, and a retry
after an ambiguous failure may duplicate (unless the idempotent producer is
used — the paper's "ongoing effort" towards exactly-once).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.common.clock import Clock, SimClock
from repro.common.compression import BatchFrame
from repro.common.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.common.errors import (
    BrokerUnavailableError,
    ConfigError,
    NotEnoughReplicasError,
    TopicAlreadyExistsError,
    TopicNotFoundError,
)
from repro.common.metrics import MetricsRegistry, metric_name
from repro.common.records import (
    ConsumerRecord,
    TopicPartition,
    estimate_size,
)
from repro.chaos.failpoints import failpoint
from repro.cluster.controller import ClusterController
from repro.cluster.coordinator import Coordinator
from repro.storage.log import LogConfig
from repro.storage.tiered import DfsObjectStore, ObjectStore
from repro.messaging.broker import Broker
from repro.messaging.fetchbuffer import (
    FetchBatch,
    build_fetch_batches,
    inflate_all,
)
from repro.messaging.offset_manager import OFFSETS_TOPIC, OffsetManager
from repro.messaging.quotas import QuotaManager
from repro.messaging.replication import ReplicationManager, ReplicationStats
from repro.messaging.topic import CLEANUP_COMPACT, TopicConfig

#: Valid ack modes.
ACKS_NONE = "none"
ACKS_LEADER = "leader"
ACKS_ALL = "all"
_ACK_MODES = (ACKS_NONE, ACKS_LEADER, ACKS_ALL)

# Metric names precomputed once (layer.component.metric convention); the
# per-acks latency histograms are a closed set, so the hot path does one
# dict lookup instead of an f-string build.
_M_MESSAGES_IN = metric_name("messaging", "cluster", "messages_in")
_M_MESSAGES_OUT = metric_name("messaging", "cluster", "messages_out")
_M_FETCH_LATENCY = metric_name("messaging", "cluster", "fetch_latency")
_M_PRODUCE_LATENCY = {
    mode: metric_name("messaging", "cluster", "produce_latency", mode)
    for mode in _ACK_MODES
}
#: Physical bytes moved over the simulated network: produce ingress,
#: synchronous + background replication hops, and fetch egress.  Compressed
#: batches move their wire bytes, so this is the tentpole's target metric.
_M_WIRE_BYTES = metric_name("messaging", "cluster", "bytes_on_wire")


@dataclass
class ProduceAck:
    """Acknowledgment for a produced batch."""

    partition: TopicPartition
    base_offset: int
    last_offset: int
    latency: float
    duplicate: bool = False


@dataclass
class FetchResult:
    """Result of a consumer fetch.

    Iterable as ``(records, latency)`` for call sites that predate
    ``next_offset`` (which is where a sequential reader should continue —
    it can exceed the last delivered record when markers or aborted
    transactional records were skipped).

    ``batches`` is populated by lazy fetches (``fetch(..., lazy=True)``):
    the response grouped into :class:`~repro.messaging.fetchbuffer.FetchBatch`
    units, compressed ones still framed; ``records`` is then empty and the
    decompress CPU is charged by whoever inflates.
    """

    records: list[ConsumerRecord]
    latency: float
    next_offset: int
    batches: list[FetchBatch] | None = None

    def __iter__(self):
        yield self.records
        yield self.latency


class MessagingCluster:
    """A cluster of brokers with replication and metadata-based access."""

    def __init__(
        self,
        num_brokers: int = 3,
        clock: Clock | None = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        page_cache_bytes: int = 256 * 1024 * 1024,
        allow_unclean_election: bool = False,
        replication_max_lag: int = 4,
        maintenance_interval: float = 5.0,
        metrics: MetricsRegistry | None = None,
        object_store: ObjectStore | None = None,
    ) -> None:
        if num_brokers <= 0:
            raise ConfigError("num_brokers must be > 0")
        self.clock = clock if clock is not None else SimClock()
        self.cost_model = cost_model
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # One cold store shared by every broker (the offline tier is a
        # separate shared system, not broker-local disk).  Created lazily on
        # the first tiered topic when not supplied.
        self._object_store = object_store
        self.coordinator = Coordinator(self.clock)
        self.controller = ClusterController(
            self.coordinator, allow_unclean_election=allow_unclean_election
        )
        self._brokers: dict[int, Broker] = {}
        for broker_id in range(num_brokers):
            broker = Broker(
                broker_id,
                self.clock,
                cost_model,
                page_cache_bytes=page_cache_bytes,
                metrics=self.metrics,
                object_store=self._object_store,
            )
            self._brokers[broker_id] = broker
            self.controller.register_broker(broker_id)
        self.controller.on_leadership_change(self._apply_leadership)
        self.controller.on_isr_change(self._apply_isr)
        self._topics: dict[str, TopicConfig] = {}
        self.replication = ReplicationManager(self, replication_max_lag)
        self.offset_manager = OffsetManager(
            self.clock, durable_append=self._append_offsets_record
        )
        self.quotas = QuotaManager(self.clock)
        self.maintenance_interval = maintenance_interval
        self._last_maintenance = self.clock.now()
        self._create_offsets_topic(num_brokers)
        # Group coordinator is attached lazily to avoid an import cycle.
        self._group_coordinator = None

    # -- internal topic ----------------------------------------------------------

    def _create_offsets_topic(self, num_brokers: int) -> None:
        self.create_topic(
            TopicConfig(
                name=OFFSETS_TOPIC,
                num_partitions=1,
                replication_factor=min(3, num_brokers),
                cleanup_policy=CLEANUP_COMPACT,
                log=LogConfig(segment_max_messages=1000),
            )
        )

    def _append_offsets_record(self, key: Any, value: Any) -> None:
        partition = TopicPartition(OFFSETS_TOPIC, 0)
        self._produce_to(partition, [(key, value, self.clock.now(), {})], ACKS_LEADER)

    def recover_offset_manager(self) -> int:
        """Rebuild the offset manager from the internal compacted topic."""
        partition = TopicPartition(OFFSETS_TOPIC, 0)
        leader_id = self.controller.leader_for(partition)
        if leader_id is None:
            raise BrokerUnavailableError(f"{partition} is offline")
        replica = self._brokers[leader_id].replica(partition)
        records = [m.value for m in replica.log.all_messages()]
        return self.offset_manager.recover_from_records(records)

    # -- topic admin ------------------------------------------------------------------

    @property
    def object_store(self) -> ObjectStore:
        """The shared cold store backing tiered topics (created on demand).

        Defaults to a :class:`DfsObjectStore` over a fresh
        :class:`~repro.baselines.dfs.SimulatedDFS` on the cluster clock —
        the paper's batch-storage system doubling as the offline tier.
        """
        if self._object_store is None:
            # Runtime import: repro.baselines imports the messaging layer.
            from repro.baselines.dfs import SimulatedDFS

            dfs = SimulatedDFS(clock=self.clock, cost_model=self.cost_model)
            self._object_store = DfsObjectStore(dfs)
            for broker in self._brokers.values():
                broker.object_store = self._object_store
        return self._object_store

    def create_topic(self, config: TopicConfig | str, **kwargs: Any) -> TopicConfig:
        """Create a topic from a :class:`TopicConfig` or name + kwargs."""
        if isinstance(config, str):
            config = TopicConfig(name=config, **kwargs)
        elif kwargs:
            raise ConfigError("pass either a TopicConfig or name + kwargs")
        if config.name in self._topics:
            raise TopicAlreadyExistsError(config.name)
        if config.tiered is not None:
            self.object_store  # materialize the cold store before hosting
        live = sorted(self.controller.live_brokers())
        if config.replication_factor > len(live):
            raise ConfigError(
                f"replication_factor {config.replication_factor} exceeds "
                f"live brokers {len(live)}"
            )
        self._topics[config.name] = config
        for p in range(config.num_partitions):
            partition = TopicPartition(config.name, p)
            replicas = [
                live[(p + i) % len(live)] for i in range(config.replication_factor)
            ]
            for broker_id in replicas:
                self._brokers[broker_id].host_partition(partition, config)
            self.controller.create_partition(partition, replicas)
        return config

    def topic_config(self, topic: str) -> TopicConfig:
        config = self._topics.get(topic)
        if config is None:
            raise TopicNotFoundError(topic)
        return config

    def topics(self) -> list[str]:
        return sorted(self._topics)

    def partitions_of(self, topic: str) -> list[TopicPartition]:
        config = self.topic_config(topic)
        return [TopicPartition(topic, p) for p in range(config.num_partitions)]

    # -- leadership plumbing ----------------------------------------------------------

    def _apply_leadership(
        self,
        partition: TopicPartition,
        leader: int | None,
        epoch: int,
        isr: list[int],
    ) -> None:
        for broker in self._brokers.values():
            if not broker.hosts(partition) or not broker.online:
                continue
            replica = broker.replica(partition)
            if broker.broker_id == leader:
                replica.become_leader(epoch, isr)
            else:
                replica.become_follower(epoch)

    def _apply_isr(self, partition: TopicPartition, isr: list[int]) -> None:
        leader = self.controller.leader_for(partition)
        if leader is None:
            return
        broker = self._brokers.get(leader)
        if broker is not None and broker.online and broker.hosts(partition):
            broker.replica(partition).set_isr(isr)

    # -- client paths ---------------------------------------------------------------------

    def produce(
        self,
        topic: str,
        partition: int,
        entries: list[tuple[Any, Any, float | None, dict[str, Any]]],
        acks: str = ACKS_LEADER,
        producer_id: int | None = None,
        producer_seq: int | None = None,
        client_id: str | None = None,
        frame: BatchFrame | None = None,
    ) -> ProduceAck:
        """Produce a batch to one partition (low-level; see Producer).

        ``client_id`` enables per-application byte-rate quotas (§4.5): a
        client over its produce quota has the throttle delay added to its
        ack latency.  With ``frame`` set the batch travels (and is charged)
        as the producer's compressed blob.
        """
        tp = TopicPartition(topic, partition)
        self.topic_config(topic)
        # Armed by chaos schedules to drop the request before it reaches the
        # leader — the client sees a transient error, nothing is appended.
        failpoint("cluster.produce", partition=tp, acks=acks)
        stamped = [
            (k, v, ts if ts is not None else self.clock.now(), h or {})
            for (k, v, ts, h) in entries
        ]
        ack = self._produce_to(
            tp, stamped, acks, producer_id, producer_seq, frame=frame
        )
        if client_id is not None:
            if frame is not None:
                batch_bytes = frame.wire_bytes
            else:
                batch_bytes = sum(
                    estimate_size(k) + estimate_size(v) + estimate_size(h)
                    for (k, v, _ts, h) in stamped
                )
            throttle = self.quotas.record_produce(client_id, batch_bytes)
            if throttle:
                ack.latency += throttle
        return ack

    def _produce_to(
        self,
        tp: TopicPartition,
        entries: list[tuple[Any, Any, float, dict[str, Any]]],
        acks: str,
        producer_id: int | None = None,
        producer_seq: int | None = None,
        frame: BatchFrame | None = None,
    ) -> ProduceAck:
        if acks not in _ACK_MODES:
            raise ConfigError(f"unknown acks mode {acks!r}; expected {_ACK_MODES}")
        config = self.topic_config(tp.topic)
        state = self.controller.partition_state(tp)
        if state.leader is None:
            raise BrokerUnavailableError(f"{tp} is offline (no leader)")
        leader_broker = self._brokers[state.leader]
        if frame is not None:
            # Compressed batch: the wire carries the frame, and the producer
            # paid one deflate pass over the logical payload.
            batch_bytes = frame.wire_bytes
            latency = self.cost_model.compress(frame.payload_bytes)
        else:
            batch_bytes = sum(
                estimate_size(k) + estimate_size(v) + estimate_size(h)
                for (k, v, _ts, h) in entries
            )
            latency = 0.0
        if acks == ACKS_NONE:
            latency += self.cost_model.network_oneway(batch_bytes)
        else:
            latency += self.cost_model.network_transfer(batch_bytes)
        self.metrics.counter(_M_WIRE_BYTES).increment(batch_bytes)
        if acks == ACKS_ALL and len(state.isr) < config.min_insync_replicas:
            raise NotEnoughReplicasError(
                f"{tp}: ISR {state.isr} below min_insync_replicas="
                f"{config.min_insync_replicas}"
            )
        result, broker_latency = leader_broker.produce(
            tp, entries, state.epoch, producer_id, producer_seq, frame=frame
        )
        latency += broker_latency
        if acks == ACKS_ALL and not result.duplicate:
            latency += self._replicate_synchronously(tp, state, batch_bytes)
        self.metrics.histogram(_M_PRODUCE_LATENCY[acks]).observe(latency)
        self.metrics.counter(_M_MESSAGES_IN).increment(len(entries))
        return ProduceAck(
            tp, result.base_offset, result.last_offset, latency, result.duplicate
        )

    def _replicate_synchronously(
        self, tp: TopicPartition, state: Any, batch_bytes: int
    ) -> float:
        """acks=all: push the new records to every ISR follower and wait.

        Followers replicate in parallel, so the added latency is the slowest
        follower's (network + append), matching the paper's observation that
        maximum durability waits for all acknowledgments.

        An ISR member that is unreachable (crashed but its session has not
        expired yet) cannot simply be skipped: acks=all promises every
        in-sync replica has the batch, and a failover onto the skipped
        follower would lose acknowledged data.  Instead the leader shrinks
        it out of the ISR on the spot; if that leaves the ISR below
        ``min_insync_replicas`` the produce fails with
        :class:`NotEnoughReplicasError` (the leader append stands — the
        producer retries and the idempotent path dedupes).
        """
        leader_replica = self._brokers[state.leader].replica(tp)
        slowest = 0.0
        for follower_id in list(state.isr):
            if follower_id == state.leader:
                continue
            follower_broker = self._brokers.get(follower_id)
            if follower_broker is None or not follower_broker.online:
                # shrink_isr notifies the leader replica via _apply_isr, so
                # the high watermark now only waits on reachable members.
                self.controller.shrink_isr(tp, follower_id)
                continue
            follower_replica = follower_broker.replica(tp)
            fetch_from = follower_replica.log_end_offset
            pending = leader_replica.fetch(
                fetch_from,
                max_messages=1 << 30,
                committed_only=False,
            )
            # Ship the leader's compressed frames with the records so the
            # follower stores the identical opaque blobs (no re-encode).
            frames = None
            if pending.messages:
                frames = leader_replica.log.frames_between(
                    pending.messages[0].offset, pending.messages[-1].offset
                )
            append_latency = follower_replica.replicate_batch(
                pending.messages, frames=frames
            )
            leader_replica.record_follower_position(
                follower_id, follower_replica.log_end_offset
            )
            self.metrics.counter(_M_WIRE_BYTES).increment(batch_bytes)
            follower_latency = (
                self.cost_model.network_transfer(batch_bytes) + append_latency
            )
            slowest = max(slowest, follower_latency)
        # Followers learn the advanced HW on their next fetch; push it now so
        # a failover immediately after the ack exposes the committed data.
        for follower_id in state.isr:
            follower_broker = self._brokers.get(follower_id)
            if (
                follower_id != state.leader
                and follower_broker is not None
                and follower_broker.online
            ):
                follower_broker.replica(tp).update_high_watermark(
                    leader_replica.high_watermark
                )
        config = self.topic_config(tp.topic)
        if len(state.isr) < config.min_insync_replicas:
            raise NotEnoughReplicasError(
                f"{tp}: ISR shrank to {state.isr} during acks=all produce, "
                f"below min_insync_replicas={config.min_insync_replicas}"
            )
        return slowest

    def fetch(
        self,
        topic: str,
        partition: int,
        offset: int,
        max_messages: int = 100,
        max_bytes: int | None = None,
        isolation: str = "read_uncommitted",
        client_id: str | None = None,
        lazy: bool = False,
    ) -> FetchResult:
        """Fetch committed records from the partition leader.

        ``isolation="read_committed"`` hides open/aborted transactions
        (see :mod:`repro.messaging.transactions`).  ``client_id`` enables
        per-application fetch quotas (§4.5).  ``lazy=True`` skips record
        materialization and returns the response as :attr:`FetchResult.batches`
        — compressed batches stay compressed until the consumer drains them.
        """
        tp = TopicPartition(topic, partition)
        failpoint("cluster.fetch", partition=tp, offset=offset)
        leader_id = self.controller.leader_for(tp)
        if leader_id is None:
            raise BrokerUnavailableError(f"{tp} is offline (no leader)")
        broker = self._brokers[leader_id]
        result, latency = broker.fetch(
            tp, offset, max_messages, max_bytes, isolation=isolation
        )
        frames: list[tuple[int, int, BatchFrame]] = []
        if result.messages:
            frames = broker.replica(tp).log.frames_between(
                result.messages[0].offset, result.messages[-1].offset
            )
        batches = build_fetch_batches(topic, partition, result.messages, frames)
        # The wire carries what the log stores: compressed runs ship as their
        # frames, so egress shrinks by the same ratio as the disk did.
        out_bytes = sum(m.stored_size for m in result.messages)
        latency += self.cost_model.network_transfer(out_bytes)
        self.metrics.counter(_M_WIRE_BYTES).increment(out_bytes)
        if client_id is not None:
            latency += self.quotas.record_fetch(client_id, out_bytes)
        self.metrics.histogram(_M_FETCH_LATENCY).observe(latency)
        self.metrics.counter(_M_MESSAGES_OUT).increment(len(result.messages))
        if lazy:
            return FetchResult([], latency, result.next_offset, batches=batches)
        records, inflate_latency = inflate_all(batches, self.cost_model)
        latency += inflate_latency
        return FetchResult(records, latency, result.next_offset)

    # -- offset / metadata queries -----------------------------------------------------------

    def leader_of(self, topic: str, partition: int) -> int | None:
        return self.controller.leader_for(TopicPartition(topic, partition))

    def beginning_offset(self, tp: TopicPartition) -> int:
        """Oldest readable offset — reaches into the cold tier when the
        partition is tiered, so ``seek_to_beginning`` rewinds over archived
        history (§2.2)."""
        return self._leader_replica(tp).earliest_offset

    def end_offset(self, tp: TopicPartition) -> int:
        """First offset a consumer cannot yet read (the high watermark)."""
        return self._leader_replica(tp).high_watermark

    def log_end_offset(self, tp: TopicPartition) -> int:
        return self._leader_replica(tp).log_end_offset

    def offset_for_timestamp(self, tp: TopicPartition, timestamp: float) -> int | None:
        """Earliest offset with record timestamp >= ``timestamp`` (§3.1
        metadata-based access).  Spans both tiers on tiered partitions."""
        replica = self._leader_replica(tp)
        if replica.cold_tier is not None:
            return replica.cold_tier.offset_for_timestamp(timestamp)
        return replica.log.offset_for_timestamp(timestamp)

    def _leader_replica(self, tp: TopicPartition):
        leader_id = self.controller.leader_for(tp)
        if leader_id is None:
            raise BrokerUnavailableError(f"{tp} is offline (no leader)")
        return self._brokers[leader_id].replica(tp)

    # -- cluster lifecycle / simulation driving -------------------------------------------------

    def broker(self, broker_id: int) -> Broker:
        broker = self._brokers.get(broker_id)
        if broker is None:
            raise ConfigError(f"unknown broker {broker_id}")
        return broker

    def brokers(self) -> list[Broker]:
        return list(self._brokers.values())

    def kill_broker(self, broker_id: int) -> None:
        """Crash a broker: its session expires and leadership moves (§4.3)."""
        broker = self.broker(broker_id)
        if not broker.online:
            return
        broker.shutdown()
        self.controller.broker_failed(broker_id)

    def restart_broker(self, broker_id: int) -> None:
        """Restart a crashed broker; it re-syncs before rejoining ISRs."""
        broker = self.broker(broker_id)
        if broker.online:
            return
        broker.startup()
        self.controller.broker_recovered(broker_id)

    def tick(self, dt: float = 0.1, replication_passes: int = 1) -> ReplicationStats:
        """Advance simulated time and run background work.

        Fires flush timers, runs the follower replication loop, and runs
        retention/compaction sweeps every ``maintenance_interval`` seconds.
        """
        if isinstance(self.clock, SimClock):
            self.clock.advance(dt)
        stats = ReplicationStats()
        for _ in range(replication_passes):
            passed = self.replication.poll()
            stats.messages_copied += passed.messages_copied
            stats.partitions_synced += passed.partitions_synced
            stats.isr_shrinks.extend(passed.isr_shrinks)
            stats.isr_expansions.extend(passed.isr_expansions)
            stats.truncations.extend(passed.truncations)
        if self.clock.now() - self._last_maintenance >= self.maintenance_interval:
            self._last_maintenance = self.clock.now()
            for broker in self._brokers.values():
                if broker.online:
                    broker.run_retention()
                    broker.run_compaction()
        return stats

    def run_until_replicated(self, max_passes: int = 100) -> int:
        """Tick until every follower is caught up (tests); returns passes."""
        for i in range(max_passes):
            stats = self.tick()
            if stats.messages_copied == 0:
                return i + 1
        return max_passes

    # -- deployment statistics (E10) --------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Deployment-shape statistics comparable to the paper's §5 numbers."""
        live = self.controller.live_brokers()
        partition_count = len(self.controller.partitions())
        replica_count = sum(len(b.replicas()) for b in self._brokers.values())
        stored_bytes = sum(
            r.log.size_bytes for b in self._brokers.values() for r in b.replicas()
        )
        return {
            "brokers": len(self._brokers),
            "live_brokers": len(live),
            "topics": len(self._topics),
            "partitions": partition_count,
            "replicas": replica_count,
            "stored_bytes": stored_bytes,
            "messages_in": self.metrics.counter(_M_MESSAGES_IN).value,
            "messages_out": self.metrics.counter(_M_MESSAGES_OUT).value,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MessagingCluster(brokers={len(self._brokers)}, "
            f"topics={len(self._topics)})"
        )
