"""Producer client (§3.1).

"Clients of the messaging layer are called producers and publish data to
different topics ... Producers can choose to which partition to publish data
in a round-robin fashion or according to a hash function for load-balancing
or semantic routing."

The producer adds the client-side behaviours the brokers don't provide:
partition selection, optional batching (``linger_messages``), bounded
retries on leadership changes (at-least-once delivery), and the optional
idempotent mode that upgrades retries to exactly-once per partition.

Construction takes either a frozen
:class:`~repro.messaging.config.ProducerConfig` or the legacy keyword
arguments (which delegate to the dataclass; unknown keywords raise
:class:`~repro.common.errors.ConfigError`).

``send`` is also the root of the per-record tracing layer: with a tracer
installed (:mod:`repro.observability.trace`) each sampled record starts a
trace here, carried downstream in the reserved ``__trace`` header.
"""

from __future__ import annotations

import itertools
import random
from typing import Any

from repro.common.compression import BatchFrame, compress_entries, parse_compression
from repro.common.errors import (
    BrokerUnavailableError,
    ConfigError,
    MessagingError,
    NotEnoughReplicasError,
    NotLeaderForPartitionError,
    ProducerFlushError,
    StaleEpochError,
)
from repro.common.metrics import metric_name
from repro.common.partitioning import partition_for_key
from repro.common.records import TRACE_HEADER, ProducerRecord, TopicPartition
from repro.messaging.cluster import MessagingCluster, ProduceAck
from repro.messaging.config import (
    PARTITIONER_HASH,
    PARTITIONER_ROUND_ROBIN,
    ProducerConfig,
)
from repro.observability.trace import current_tracer

#: Transient produce failures the retry loop absorbs.  NotEnoughReplicas is
#: retriable because the ISR usually recovers (follower catch-up re-expands
#: it) and the idempotent path dedupes any leader append that stood.
_RETRIABLE = (
    NotLeaderForPartitionError,
    BrokerUnavailableError,
    StaleEpochError,
    NotEnoughReplicasError,
)

_producer_ids = itertools.count(1)

#: Logical-bytes-per-wire-byte observed per compressed batch.
_M_COMPRESSION_RATIO = metric_name("messaging", "producer", "compression_ratio")


class Producer:
    """Publishes records to topics with partitioning, batching and retries."""

    def __init__(
        self,
        cluster: MessagingCluster,
        config: ProducerConfig | None = None,
        **kwargs: Any,
    ) -> None:
        if config is not None and kwargs:
            raise ConfigError(
                "pass either a ProducerConfig or keyword options, not both"
            )
        if config is None:
            config = ProducerConfig.from_kwargs(**kwargs)
        self.config = config
        self.cluster = cluster
        self.acks = config.acks
        self.partitioner = config.partitioner
        self.linger_messages = config.linger_messages
        self.max_retries = config.max_retries
        self.idempotent = config.idempotent
        self.client_id = config.client_id
        # Optional typed boundary: values/keys are serialized on the way in
        # (see repro.common.serde; pass e.g. JsonSerde() or a name like
        # "json" resolved via serde_by_name at the call site).
        self.key_serde = config.key_serde
        self.value_serde = config.value_serde
        # Batch compression: each linger batch is deflated once, client-side,
        # into a BatchFrame that then travels broker -> follower -> cold tier
        # as an opaque blob.  codec "none" keeps the frameless legacy path.
        self._codec, self._codec_level = parse_compression(config.compression)
        self._last_frame: BatchFrame | None = None
        self.producer_id = next(_producer_ids)
        self.retry_backoff = config.retry_backoff
        self.retry_backoff_max = config.retry_backoff_max
        # Deterministic jitter: seeded from the producer id unless the caller
        # pins a seed (chaos soaks do, for byte-identical replays).
        self._retry_rng = random.Random(
            self.producer_id
            if config.retry_jitter_seed is None
            else config.retry_jitter_seed
        )
        self._round_robin: dict[str, itertools.count] = {}
        self._sequences: dict[TopicPartition, int] = {}
        self._buffers: dict[TopicPartition, list[tuple[Any, Any, float | None, dict[str, Any]]]] = {}
        # Batches that exhausted their retries, parked with the idempotent
        # sequence they were (and will again be) sent under.  flush() drains
        # these before the live buffer of the same partition so per-partition
        # order — and broker-side dedup — survive the failure.
        self._failed_batches: dict[
            TopicPartition,
            list[tuple[int | None, list[tuple[Any, Any, float | None, dict[str, Any]]]]],
        ] = {}
        self.acks_received = 0
        self.retries = 0

    # -- partition selection ------------------------------------------------------

    def _choose_partition(self, record: ProducerRecord) -> int:
        num_partitions = len(self.cluster.partitions_of(record.topic))
        if record.partition is not None:
            if not 0 <= record.partition < num_partitions:
                raise ConfigError(
                    f"partition {record.partition} out of range for "
                    f"{record.topic} ({num_partitions} partitions)"
                )
            return record.partition
        if callable(self.partitioner):
            return self.partitioner(record.key, num_partitions) % num_partitions
        if self.partitioner == PARTITIONER_HASH and record.key is not None:
            return partition_for_key(record.key, num_partitions)
        counter = self._round_robin.setdefault(record.topic, itertools.count())
        return next(counter) % num_partitions

    # -- send path ----------------------------------------------------------------

    def send(
        self,
        topic: str,
        value: Any,
        key: Any = None,
        partition: int | None = None,
        timestamp: float | None = None,
        headers: dict[str, Any] | None = None,
    ) -> ProduceAck | None:
        """Publish one record.

        With ``linger_messages == 1`` the record is sent immediately and its
        ack returned.  With batching enabled the record is buffered and
        ``None`` returned; the batch is sent when it reaches
        ``linger_messages`` records (or on :meth:`flush`).

        A batch that exhausts its retries is *not* dropped: it is re-buffered
        (with its idempotent sequence, if any) and the error re-raised, so a
        later :meth:`flush` retries it.  While a partition has a re-buffered
        batch parked, newly buffered records for it are held back — sending
        them first would reorder the partition and break broker-side dedup.
        """
        if self.value_serde is not None:
            value = self.value_serde.serialize(value)
        if self.key_serde is not None and key is not None:
            key = self.key_serde.serialize(key)
        tracer = current_tracer()
        span = None
        if tracer is not None:
            # A __trace header already present means this record continues an
            # existing trace (e.g. a job emitting to a derived feed) — parent
            # on it rather than starting (and re-sampling) a new trace.
            parent = headers.get(TRACE_HEADER) if headers else None
            span = tracer.open_span(
                "produce.send",
                parent,
                start=self.cluster.clock.now(),
                topic=topic,
            )
            if span is not None:
                if self.client_id is not None:
                    span.attrs["client_id"] = self.client_id
                headers = dict(headers) if headers else {}
                headers[TRACE_HEADER] = span.context()
        record = ProducerRecord(
            topic=topic,
            value=value,
            key=key,
            partition=partition,
            timestamp=timestamp,
            headers=headers if headers is not None else {},
        )
        tp = TopicPartition(topic, self._choose_partition(record))
        if span is not None:
            span.attrs["partition"] = tp.partition
        entry = (record.key, record.value, record.timestamp, record.headers)
        if self.linger_messages == 1 and tp not in self._failed_batches:
            if span is None:
                return self._send_batch(tp, [entry])
            try:
                ack = self._send_batch(tp, [entry])
                self._annotate_compression(span)
            except MessagingError as exc:
                span.attrs["error"] = type(exc).__name__
                raise
            finally:
                tracer.close(span, end=self.cluster.clock.now())
            return ack
        buffer = self._buffers.setdefault(tp, [])
        buffer.append(entry)
        if (
            len(buffer) >= self.linger_messages
            and tp not in self._failed_batches
        ):
            del self._buffers[tp]
            if span is None:
                return self._send_batch(tp, buffer)
            span.attrs["batched"] = len(buffer)
            try:
                ack = self._send_batch(tp, buffer)
                self._annotate_compression(span)
            except MessagingError as exc:
                span.attrs["error"] = type(exc).__name__
                raise
            finally:
                tracer.close(span, end=self.cluster.clock.now())
            return ack
        if span is not None:
            # Buffered: the send span covers only hand-off to the batch
            # buffer; broker-side spans appear when the batch flushes.
            span.attrs["buffered"] = True
            tracer.close(span)
        return None

    def flush(self) -> list[ProduceAck]:
        """Send every parked and buffered batch; returns their acks.

        Parked (previously failed) batches go first — they predate anything
        in the live buffer of the same partition.  Partitions fail
        independently: one dead partition does not block the rest.  If any
        batch still cannot be delivered it stays buffered and
        :class:`~repro.common.errors.ProducerFlushError` is raised carrying
        the partial acks and the per-partition errors.
        """
        acks: list[ProduceAck] = []
        failures: list[tuple[TopicPartition, MessagingError]] = []
        for tp in list(self._failed_batches):
            parked = self._failed_batches.pop(tp)
            for i, (seq, entries) in enumerate(parked):
                try:
                    acks.append(self._send_batch(tp, entries, seq=seq))
                except MessagingError as exc:
                    # _send_batch re-parked the failed batch; keep the rest
                    # queued behind it, in order, and move on.
                    self._failed_batches[tp].extend(parked[i + 1:])
                    failures.append((tp, exc))
                    break
        for tp in list(self._buffers):
            if tp in self._failed_batches:
                continue  # blocked behind a parked batch; order first
            entries = self._buffers.pop(tp)
            try:
                acks.append(self._send_batch(tp, entries))
            except MessagingError as exc:
                failures.append((tp, exc))
        if failures:
            raise ProducerFlushError(acks, failures)
        return acks

    def _send_batch(
        self,
        tp: TopicPartition,
        entries: list[tuple[Any, Any, float | None, dict[str, Any]]],
        seq: int | None = None,
    ) -> ProduceAck:
        producer_id = self.producer_id if self.idempotent else None
        producer_seq: int | None = None
        if self.idempotent:
            if seq is not None:
                producer_seq = seq  # retry of a parked batch: original seq
            else:
                # Sequences advance at allocation, not on success: a batch
                # that fails keeps its number parked with it, so its retry
                # dedupes against any leader append that stood, and newer
                # batches can never collide with it.
                producer_seq = self._sequences.get(tp, -1) + 1
                self._sequences[tp] = producer_seq
        frame = self._last_frame = None
        if self._codec != "none":
            # Stamp timestamps *before* compressing so the frame and the
            # broker's stored records agree even when retries advance the
            # clock (cluster-side stamping then becomes a no-op).  The
            # stamped entries also replace the originals everywhere below —
            # parked batches keep them, so a flush-retry recompresses to the
            # same bytes.
            now = self.cluster.clock.now()
            entries = [
                (k, v, ts if ts is not None else now, h)
                for (k, v, ts, h) in entries
            ]
            frame = compress_entries(entries, self._codec, self._codec_level)
            if frame is not None:
                frame.producer_id = producer_id
                frame.producer_seq = producer_seq
                self._last_frame = frame
                self.cluster.metrics.histogram(_M_COMPRESSION_RATIO).observe(
                    frame.ratio
                )
        attempts = 0
        while True:
            try:
                ack = self.cluster.produce(
                    tp.topic,
                    tp.partition,
                    entries,
                    acks=self.acks,
                    producer_id=producer_id,
                    producer_seq=producer_seq,
                    client_id=self.client_id,
                    frame=frame,
                )
                self.acks_received += 1
                return ack
            except _RETRIABLE as exc:
                attempts += 1
                self.retries += 1
                if attempts > self.max_retries:
                    self._failed_batches.setdefault(tp, []).append(
                        (producer_seq, list(entries))
                    )
                    raise MessagingError(
                        f"produce to {tp} failed after {attempts} attempts; "
                        f"{len(entries)} record(s) re-buffered for retry"
                    ) from exc
                # Metadata refresh is implicit: the controller is the
                # authoritative source consulted on the next attempt.
                # Capped-exponential backoff with deterministic jitter gives
                # failovers and ISR recovery simulated time to complete.
                self.cluster.tick(self._backoff(attempts))

    def _annotate_compression(self, span) -> None:
        """Attach codec + achieved ratio of the last framed batch to a span."""
        frame = self._last_frame
        if span is not None and frame is not None:
            span.attrs["codec"] = f"{frame.codec}:{frame.level}"
            span.attrs["compression_ratio"] = round(frame.ratio, 4)

    def _backoff(self, attempts: int) -> float:
        delay = min(
            self.retry_backoff_max, self.retry_backoff * (2 ** (attempts - 1))
        )
        return delay * (0.5 + 0.5 * self._retry_rng.random())

    def pending(self) -> int:
        """Records buffered or parked after a failure, not yet acked."""
        buffered = sum(len(b) for b in self._buffers.values())
        parked = sum(
            len(entries)
            for batches in self._failed_batches.values()
            for _seq, entries in batches
        )
        return buffered + parked
