"""Producer client (§3.1).

"Clients of the messaging layer are called producers and publish data to
different topics ... Producers can choose to which partition to publish data
in a round-robin fashion or according to a hash function for load-balancing
or semantic routing."

The producer adds the client-side behaviours the brokers don't provide:
partition selection, optional batching (``linger_messages``), bounded
retries on leadership changes (at-least-once delivery), and the optional
idempotent mode that upgrades retries to exactly-once per partition.
"""

from __future__ import annotations

import itertools
import zlib
from typing import Any, Callable

from repro.common.errors import (
    BrokerUnavailableError,
    ConfigError,
    MessagingError,
    NotLeaderForPartitionError,
    StaleEpochError,
)
from repro.common.records import ProducerRecord, TopicPartition
from repro.messaging.cluster import ACKS_LEADER, MessagingCluster, ProduceAck

#: Partitioner strategies.
PARTITIONER_HASH = "hash"
PARTITIONER_ROUND_ROBIN = "round_robin"

_producer_ids = itertools.count(1)


def _stable_hash(key: Any) -> int:
    """Deterministic key hash (Python's ``hash`` is salted per process)."""
    return zlib.crc32(repr(key).encode("utf-8"))


class Producer:
    """Publishes records to topics with partitioning, batching and retries."""

    def __init__(
        self,
        cluster: MessagingCluster,
        acks: str = ACKS_LEADER,
        partitioner: str | Callable[[Any, int], int] = PARTITIONER_HASH,
        linger_messages: int = 1,
        max_retries: int = 3,
        idempotent: bool = False,
        client_id: str | None = None,
        key_serde: Any = None,
        value_serde: Any = None,
    ) -> None:
        if linger_messages < 1:
            raise ConfigError("linger_messages must be >= 1")
        if max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if isinstance(partitioner, str) and partitioner not in (
            PARTITIONER_HASH,
            PARTITIONER_ROUND_ROBIN,
        ):
            raise ConfigError(f"unknown partitioner {partitioner!r}")
        self.cluster = cluster
        self.acks = acks
        self.partitioner = partitioner
        self.linger_messages = linger_messages
        self.max_retries = max_retries
        self.idempotent = idempotent
        self.client_id = client_id
        # Optional typed boundary: values/keys are serialized on the way in
        # (see repro.common.serde; pass e.g. JsonSerde() or a name like
        # "json" resolved via serde_by_name at the call site).
        self.key_serde = key_serde
        self.value_serde = value_serde
        self.producer_id = next(_producer_ids)
        self._round_robin: dict[str, itertools.count] = {}
        self._sequences: dict[TopicPartition, int] = {}
        self._buffers: dict[TopicPartition, list[tuple[Any, Any, float | None, dict[str, Any]]]] = {}
        self.acks_received = 0
        self.retries = 0

    # -- partition selection ------------------------------------------------------

    def _choose_partition(self, record: ProducerRecord) -> int:
        num_partitions = len(self.cluster.partitions_of(record.topic))
        if record.partition is not None:
            if not 0 <= record.partition < num_partitions:
                raise ConfigError(
                    f"partition {record.partition} out of range for "
                    f"{record.topic} ({num_partitions} partitions)"
                )
            return record.partition
        if callable(self.partitioner):
            return self.partitioner(record.key, num_partitions) % num_partitions
        if self.partitioner == PARTITIONER_HASH and record.key is not None:
            return _stable_hash(record.key) % num_partitions
        counter = self._round_robin.setdefault(record.topic, itertools.count())
        return next(counter) % num_partitions

    # -- send path ----------------------------------------------------------------

    def send(
        self,
        topic: str,
        value: Any,
        key: Any = None,
        partition: int | None = None,
        timestamp: float | None = None,
        headers: dict[str, Any] | None = None,
    ) -> ProduceAck | None:
        """Publish one record.

        With ``linger_messages == 1`` the record is sent immediately and its
        ack returned.  With batching enabled the record is buffered and
        ``None`` returned; the batch is sent when it reaches
        ``linger_messages`` records (or on :meth:`flush`).
        """
        if self.value_serde is not None:
            value = self.value_serde.serialize(value)
        if self.key_serde is not None and key is not None:
            key = self.key_serde.serialize(key)
        record = ProducerRecord(
            topic=topic,
            value=value,
            key=key,
            partition=partition,
            timestamp=timestamp,
            headers=headers if headers is not None else {},
        )
        tp = TopicPartition(topic, self._choose_partition(record))
        entry = (record.key, record.value, record.timestamp, record.headers)
        if self.linger_messages == 1:
            return self._send_batch(tp, [entry])
        buffer = self._buffers.setdefault(tp, [])
        buffer.append(entry)
        if len(buffer) >= self.linger_messages:
            del self._buffers[tp]
            return self._send_batch(tp, buffer)
        return None

    def flush(self) -> list[ProduceAck]:
        """Send all buffered batches; returns their acks."""
        acks = []
        buffers, self._buffers = self._buffers, {}
        for tp, entries in buffers.items():
            acks.append(self._send_batch(tp, entries))
        return acks

    def _send_batch(
        self,
        tp: TopicPartition,
        entries: list[tuple[Any, Any, float | None, dict[str, Any]]],
    ) -> ProduceAck:
        producer_id = self.producer_id if self.idempotent else None
        producer_seq: int | None = None
        if self.idempotent:
            producer_seq = self._sequences.get(tp, -1) + 1
        attempts = 0
        while True:
            try:
                ack = self.cluster.produce(
                    tp.topic,
                    tp.partition,
                    entries,
                    acks=self.acks,
                    producer_id=producer_id,
                    producer_seq=producer_seq,
                    client_id=self.client_id,
                )
                if self.idempotent:
                    self._sequences[tp] = producer_seq  # type: ignore[assignment]
                self.acks_received += 1
                return ack
            except (
                NotLeaderForPartitionError,
                BrokerUnavailableError,
                StaleEpochError,
            ) as exc:
                attempts += 1
                self.retries += 1
                if attempts > self.max_retries:
                    raise MessagingError(
                        f"produce to {tp} failed after {attempts} attempts"
                    ) from exc
                # Metadata refresh is implicit: the controller is the
                # authoritative source consulted on the next attempt.
                self.cluster.tick(0.0)

    def pending(self) -> int:
        """Records buffered but not yet sent."""
        return sum(len(b) for b in self._buffers.values())
