"""Consumer groups: queue semantics within, pub/sub across (§3.1).

"Consumers are divided into consumer groups ... At the level of consumer
groups, the messaging layer behaves as a publish/subscribe system ...
However, only one consumer within each consumer group receives a given
message, i.e. the system behaves as a queue for the consumers within a
consumer group."

The group coordinator realizes this by giving each group a disjoint
partition assignment over its members: every partition of a subscribed topic
is owned by exactly one member, so within the group each message is
delivered once, while independent groups each receive the full stream.

Rebalancing is *eager*: any membership change bumps the group generation and
recomputes the whole assignment; members detect the generation change on
their next poll and re-fetch their assignment (E9 exercises scaling a group
up and down).

The ``cooperative_sticky`` strategy reduces the cost of that eagerness for
elastic groups: instead of recomputing from scratch, it keeps each
surviving member's current partitions wherever the post-change balance
allows, so a single join/leave moves only the minimum set of partitions —
every move is a consumer that must re-seed its position and refill its
prefetch buffers, so fewer moves means less rebalance disruption.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError, UnknownMemberError
from repro.common.records import TopicPartition

#: Assignment strategies.
ASSIGN_RANGE = "range"
ASSIGN_ROUND_ROBIN = "round_robin"
ASSIGN_COOPERATIVE_STICKY = "cooperative_sticky"

ASSIGNMENT_STRATEGIES = (
    ASSIGN_RANGE,
    ASSIGN_ROUND_ROBIN,
    ASSIGN_COOPERATIVE_STICKY,
)


@dataclass
class GroupState:
    """Coordinator-side state of one consumer group."""

    group: str
    generation: int = 0
    members: dict[str, set[str]] = field(default_factory=dict)  # member -> topics
    assignment: dict[str, list[TopicPartition]] = field(default_factory=dict)
    rebalances: int = 0


class GroupCoordinator:
    """Tracks group membership and computes partition assignments."""

    def __init__(self, cluster, strategy: str = ASSIGN_RANGE) -> None:
        if strategy not in ASSIGNMENT_STRATEGIES:
            raise ConfigError(f"unknown assignment strategy {strategy!r}")
        self.cluster = cluster
        self.strategy = strategy
        self._groups: dict[str, GroupState] = {}

    # -- membership ----------------------------------------------------------------

    def join(self, group: str, member_id: str, topics: set[str] | list[str]) -> int:
        """Add/refresh a member; triggers a rebalance.  Returns generation."""
        state = self._groups.setdefault(group, GroupState(group))
        state.members[member_id] = set(topics)
        self._rebalance(state)
        return state.generation

    def leave(self, group: str, member_id: str) -> None:
        """Remove a member; its partitions are redistributed."""
        state = self._groups.get(group)
        if state is None or member_id not in state.members:
            raise UnknownMemberError(f"{member_id} not in group {group}")
        del state.members[member_id]
        state.assignment.pop(member_id, None)
        self._rebalance(state)

    # -- assignment -----------------------------------------------------------------

    def _rebalance(self, state: GroupState) -> None:
        state.generation += 1
        state.rebalances += 1
        previous = state.assignment
        state.assignment = {member: [] for member in state.members}
        if not state.members:
            return
        members = sorted(state.members)
        if self.strategy == ASSIGN_RANGE:
            self._assign_range(state, members)
        elif self.strategy == ASSIGN_ROUND_ROBIN:
            self._assign_round_robin(state, members)
        else:
            self._assign_cooperative_sticky(state, members, previous)

    def _assign_range(self, state: GroupState, members: list[str]) -> None:
        """Per topic, split the partition range contiguously over subscribers."""
        topics = sorted({t for subs in state.members.values() for t in subs})
        for topic in topics:
            subscribers = [m for m in members if topic in state.members[m]]
            if not subscribers:
                continue
            partitions = self.cluster.partitions_of(topic)
            per_member = len(partitions) // len(subscribers)
            extra = len(partitions) % len(subscribers)
            cursor = 0
            for i, member in enumerate(subscribers):
                take = per_member + (1 if i < extra else 0)
                state.assignment[member].extend(partitions[cursor : cursor + take])
                cursor += take

    def _assign_round_robin(self, state: GroupState, members: list[str]) -> None:
        """Deal all subscribed partitions round-robin over subscribers."""
        topics = sorted({t for subs in state.members.values() for t in subs})
        all_partitions = [
            tp for topic in topics for tp in self.cluster.partitions_of(topic)
        ]
        i = 0
        for tp in all_partitions:
            eligible = [m for m in members if tp.topic in state.members[m]]
            if not eligible:
                continue
            member = eligible[i % len(eligible)]
            state.assignment[member].append(tp)
            i += 1

    def _assign_cooperative_sticky(
        self,
        state: GroupState,
        members: list[str],
        previous: dict[str, list[TopicPartition]],
    ) -> None:
        """Keep current owners where balance allows; move only the minimum.

        Per topic: each surviving subscriber claims the partitions it owned
        in the previous generation.  Balance targets (``n // k`` each, one
        extra for some) hand the extras to the members keeping the most, so
        the fewest claims must be broken; whatever is left over — new
        partitions, the leaver's partitions, claims above target — is dealt
        to below-target members in name order.  Per-topic balance matches
        the range strategy's (counts differ by at most one).
        """
        topics = sorted({t for subs in state.members.values() for t in subs})
        for topic in topics:
            subscribers = [m for m in members if topic in state.members[m]]
            if not subscribers:
                continue
            partitions = self.cluster.partitions_of(topic)
            per_member, extra = divmod(len(partitions), len(subscribers))
            owner: dict[TopicPartition, str] = {}
            for member in subscribers:
                for tp in previous.get(member, []):
                    if tp.topic == topic:
                        owner[tp] = member
            claimed = {
                member: sum(1 for tp in partitions if owner.get(tp) == member)
                for member in subscribers
            }
            by_keep = sorted(subscribers, key=lambda m: (-claimed[m], m))
            target = {member: per_member for member in subscribers}
            for member in by_keep[:extra]:
                target[member] += 1
            kept: dict[str, list[TopicPartition]] = {m: [] for m in subscribers}
            unassigned: list[TopicPartition] = []
            for tp in partitions:
                member = owner.get(tp)
                if member is not None and len(kept[member]) < target[member]:
                    kept[member].append(tp)
                else:
                    unassigned.append(tp)
            for tp in unassigned:
                for member in subscribers:
                    if len(kept[member]) < target[member]:
                        kept[member].append(tp)
                        break
            for member in subscribers:
                state.assignment[member].extend(kept[member])

    # -- queries --------------------------------------------------------------------

    def assignment_for(self, group: str, member_id: str) -> list[TopicPartition]:
        state = self._state(group)
        if member_id not in state.members:
            raise UnknownMemberError(f"{member_id} not in group {group}")
        return list(state.assignment.get(member_id, []))

    def generation(self, group: str) -> int:
        return self._state(group).generation

    def members(self, group: str) -> list[str]:
        return sorted(self._state(group).members)

    def rebalance_count(self, group: str) -> int:
        return self._state(group).rebalances

    def _state(self, group: str) -> GroupState:
        state = self._groups.get(group)
        if state is None:
            raise UnknownMemberError(f"unknown group {group}")
        return state

    def groups(self) -> list[str]:
        return sorted(self._groups)
