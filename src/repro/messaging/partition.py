"""Partition replicas: the broker-side unit of replication (§3.1, §4.3).

Each broker hosts a :class:`PartitionReplica` per partition assigned to it.
One replica is the *leader* (serves produces and fetches); the others are
*followers* that copy the leader's log.  The leader tracks each follower's
log-end offset (LEO) and advances the *high watermark* (HW) — the offset up
to which data is replicated to every in-sync replica.  Consumers only see
records below the HW, which is what makes an acknowledged ``acks=all`` write
survive N-1 broker failures.

Leader epochs fence zombies: every leadership change bumps the epoch, and
requests carrying a stale epoch are rejected with
:class:`~repro.common.errors.StaleEpochError`.

Idempotent produce (the paper's "ongoing effort to ... implement support for
exactly-once semantics") is supported via per-producer sequence numbers:
a retry of an already-appended batch returns the original offsets instead of
appending duplicates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.common.compression import BatchFrame
from repro.common.errors import (
    ConfigError,
    NotLeaderForPartitionError,
    StaleEpochError,
)
from repro.common.records import TRACE_HEADER, StoredMessage, TopicPartition
from repro.observability.trace import current_tracer
from repro.storage.log import PartitionLog, ReadResult
from repro.storage.tiered.tier import ColdTier

ROLE_LEADER = "leader"
ROLE_FOLLOWER = "follower"
ROLE_OFFLINE = "offline"


@dataclass
class ProduceResult:
    """Offsets assigned to a produced batch plus storage latency."""

    base_offset: int
    last_offset: int
    latency: float
    duplicate: bool = False


class PartitionReplica:
    """One broker's copy of one partition."""

    def __init__(
        self,
        partition: TopicPartition,
        broker_id: int,
        log: PartitionLog,
    ) -> None:
        self.partition = partition
        self.broker_id = broker_id
        self.log = log
        # Cold tier (tiered topics only): archive of segments retention has
        # offloaded from the hot log; fetches below log_start fall through
        # to it instead of erroring.
        self.cold_tier: ColdTier | None = None
        self.role = ROLE_FOLLOWER
        self.leader_epoch = 0
        self.high_watermark = 0
        # Leader-only state: follower LEOs and current ISR membership.
        self._follower_leo: dict[int, int] = {}
        self._isr: list[int] = []
        # Idempotent-producer dedup: (producer_id, seq) -> ProduceResult.
        self._producer_seqs: dict[int, int] = {}
        self._producer_results: dict[tuple[int, int], ProduceResult] = {}
        # Transaction bookkeeping (read_committed isolation):
        # open transactions (pid -> first offset) and aborted offset sets.
        self._open_txns: dict[int, int] = {}
        self._aborted_offsets: set[int] = set()
        self._txn_record_offsets: dict[int, list[int]] = {}

    # -- role transitions ---------------------------------------------------------

    def become_leader(self, epoch: int, isr: list[int]) -> None:
        """Promote this replica to leader for ``epoch``.

        The new leader's HW starts at its own previous HW and advances as the
        (possibly singleton) ISR confirms.  If this replica is the only ISR
        member, everything in its log is immediately committed.
        """
        if epoch <= self.leader_epoch and self.role == ROLE_LEADER:
            raise StaleEpochError(
                f"{self.partition}: epoch {epoch} <= current {self.leader_epoch}"
            )
        self.role = ROLE_LEADER
        self.leader_epoch = epoch
        self._isr = list(isr)
        self._follower_leo = {b: 0 for b in isr if b != self.broker_id}
        self._advance_high_watermark()

    def become_follower(self, epoch: int) -> None:
        """Demote to follower under a new leader epoch."""
        self.role = ROLE_FOLLOWER
        self.leader_epoch = epoch
        self._follower_leo.clear()
        self._isr = []

    def mark_offline(self) -> None:
        self.role = ROLE_OFFLINE

    # -- leader produce path ----------------------------------------------------------

    def append_batch(
        self,
        entries: list[tuple[Any, Any, float, dict[str, Any]]],
        epoch: int | None = None,
        producer_id: int | None = None,
        producer_seq: int | None = None,
        frame: BatchFrame | None = None,
    ) -> ProduceResult:
        """Leader-side append of a batch of (key, value, timestamp, headers).

        With ``producer_id``/``producer_seq`` set, a replayed batch (same or
        lower sequence) is deduplicated and the original offsets returned —
        the idempotent-producer upgrade from at-least-once.  ``frame`` is the
        producer's compressed blob for this batch: the log stores it as an
        opaque unit and charges storage by its wire bytes.
        """
        self._check_leader(epoch)
        if not entries:
            raise ConfigError("append_batch requires at least one entry")
        if producer_id is not None and producer_seq is not None:
            last_seq = self._producer_seqs.get(producer_id, -1)
            if producer_seq <= last_seq:
                cached = self._producer_results.get((producer_id, producer_seq))
                if cached is not None:
                    return ProduceResult(
                        cached.base_offset, cached.last_offset, 0.0, duplicate=True
                    )
                # Sequence seen but result evicted: still refuse to re-append.
                raise ConfigError(
                    f"producer {producer_id} replayed seq {producer_seq} "
                    "with no cached result"
                )
        if producer_id is not None and producer_seq is not None:
            # Producer state travels inside the log (as in Kafka batch
            # headers) so a newly elected leader can keep deduplicating.
            entries = [
                (
                    key,
                    value,
                    timestamp,
                    {**headers, "__pid": producer_id, "__seq": producer_seq},
                )
                for key, value, timestamp, headers in entries
            ]
        start_offset = self.log.log_end_offset
        try:
            batch = self.log.append_batch(entries, frame=frame)
        except ConfigError:
            # Per-record semantics: records before the failing one were
            # appended, so their transaction state must still be tracked.
            self._track_entry_transactions(entries, start_offset, self.log.log_end_offset)
            raise
        self._track_entry_transactions(entries, batch.base_offset, self.log.log_end_offset)
        result = ProduceResult(batch.base_offset, batch.last_offset, batch.latency)
        tracer = current_tracer()
        if tracer is not None:
            now = self.log.clock.now()
            for i, entry in enumerate(entries):
                ctx = entry[3].get(TRACE_HEADER) if entry[3] else None
                if ctx is not None:
                    tracer.record(
                        "broker.append", ctx, now, now + batch.latency,
                        broker=self.broker_id,
                        topic=self.partition.topic,
                        partition=self.partition.partition,
                        offset=batch.base_offset + i,
                    )
        if producer_id is not None and producer_seq is not None:
            self._producer_seqs[producer_id] = producer_seq
            self._producer_results[(producer_id, producer_seq)] = result
        if self._only_isr_member():
            self._advance_high_watermark()
        return result

    def _track_entry_transactions(
        self,
        entries: list[tuple[Any, Any, float, dict[str, Any]]],
        start_offset: int,
        end_offset: int,
    ) -> None:
        """Track transaction markers for the appended prefix of ``entries``."""
        offset = start_offset
        for entry in entries:
            if offset >= end_offset:
                break
            headers = entry[3]
            if headers:
                self._track_transaction(headers, offset)
            offset += 1

    def _only_isr_member(self) -> bool:
        return self.role == ROLE_LEADER and set(self._isr) <= {self.broker_id}

    def _check_leader(self, epoch: int | None) -> None:
        if self.role != ROLE_LEADER:
            raise NotLeaderForPartitionError(
                f"broker {self.broker_id} is {self.role} for {self.partition}"
            )
        if epoch is not None and epoch != self.leader_epoch:
            raise StaleEpochError(
                f"{self.partition}: request epoch {epoch} != leader epoch "
                f"{self.leader_epoch}"
            )

    # -- fetch paths -----------------------------------------------------------------

    def fetch(
        self,
        offset: int,
        max_messages: int = 100,
        max_bytes: int | None = None,
        committed_only: bool = True,
        isolation: str = "read_uncommitted",
    ) -> ReadResult:
        """Read records starting at ``offset``.

        Consumers use ``committed_only=True`` (bounded by the HW); follower
        replication uses ``committed_only=False`` to copy the uncommitted
        tail, including transaction markers.  ``isolation="read_committed"``
        additionally bounds the read by the last stable offset, hides
        aborted transactional records, and hides control markers.

        On a tiered partition, an ``offset`` that retention has already
        moved below ``log_start_offset`` is served transparently from the
        cold tier (and stitched into the hot log when the read crosses the
        tier boundary) — §2.2 rewindability across the retention horizon.
        Without a cold tier the read raises
        :class:`~repro.common.errors.OffsetOutOfRangeError` as before.
        """
        cold = (
            self.cold_tier is not None
            and offset < self.log.log_start_offset
        )
        if cold:
            result = self.cold_tier.read_through(offset, max_messages, max_bytes)
        else:
            result = self.log.read(offset, max_messages, max_bytes)
        if not committed_only:
            # Replica fetches: no spans — replication has its own stage
            # (``replication.replicate``) on the follower's append.
            return result
        bound = self.high_watermark
        if isolation == "read_committed":
            bound = min(bound, self.last_stable_offset)
        visible = []
        for message in result.messages:
            if message.offset >= bound:
                break
            if "__ctrl" in message.headers:
                continue  # control markers are never client-visible
            if (
                isolation == "read_committed"
                and message.offset in self._aborted_offsets
            ):
                continue
            visible.append(message)
        tracer = current_tracer()
        if tracer is not None and visible:
            now = self.log.clock.now()
            for message in visible:
                ctx = message.headers.get(TRACE_HEADER) if message.headers else None
                if ctx is not None:
                    tracer.record(
                        "broker.fetch", ctx, now, now + result.latency,
                        broker=self.broker_id,
                        topic=self.partition.topic,
                        partition=self.partition.partition,
                        offset=message.offset,
                        cold=cold,
                    )
        next_offset = min(result.next_offset, bound)
        next_offset = max(next_offset, offset)
        return ReadResult(
            visible, result.latency, result.log_end_offset, next_offset
        )

    # -- replication bookkeeping ---------------------------------------------------------

    def replicate_batch(
        self,
        messages: list[StoredMessage],
        frames: list[tuple[int, int, BatchFrame]] | None = None,
    ) -> float:
        """Follower-side append of records copied from the leader.

        The whole fetched batch lands through one
        :meth:`~repro.storage.log.PartitionLog.append_stored_batch` call —
        one roll/index/page-cache pass instead of one per record.  ``frames``
        carries the leader's compressed-batch registry entries for the copied
        range: the follower shares the immutable frame objects, so compressed
        batches cross the replication hop without being re-encoded.
        """
        if self.role == ROLE_LEADER:
            raise ConfigError(f"{self.partition}: leader cannot replicate from itself")
        if not messages:
            return 0.0
        copies = [
            StoredMessage(
                key=message.key,
                value=message.value,
                timestamp=message.timestamp,
                offset=message.offset,
                headers=dict(message.headers),
                size=message.size,
                stored_size=message.stored_size,
            )
            for message in messages
        ]
        latency = self.log.append_stored_batch(copies, frames=frames).latency
        for copy in copies:
            if copy.headers:
                self._absorb_producer_state(copy)
        tracer = current_tracer()
        if tracer is not None:
            now = self.log.clock.now()
            for copy in copies:
                ctx = copy.headers.get(TRACE_HEADER) if copy.headers else None
                if ctx is not None:
                    tracer.record(
                        "replication.replicate", ctx, now, now + latency,
                        follower=self.broker_id,
                        topic=self.partition.topic,
                        partition=self.partition.partition,
                        offset=copy.offset,
                    )
        return latency

    def _track_transaction(self, headers: dict[str, Any], offset: int) -> None:
        """Maintain open-transaction and aborted-range state (read_committed).

        Called for every appended record, leader- or replication-side, so
        transaction visibility survives failover like everything else in the
        log does.
        """
        producer_id = headers.get("__pid")
        if producer_id is None:
            return
        verdict = headers.get("__ctrl")
        if verdict is not None:
            self._open_txns.pop(producer_id, None)
            offsets = self._txn_record_offsets.pop(producer_id, [])
            if verdict == "abort":
                self._aborted_offsets.update(offsets)
            return
        if headers.get("__txn"):
            self._open_txns.setdefault(producer_id, offset)
            self._txn_record_offsets.setdefault(producer_id, []).append(offset)

    @property
    def last_stable_offset(self) -> int:
        """First offset of the earliest open transaction, capped by the HW.

        read_committed consumers never read past it, so they observe
        transactions atomically and in order.
        """
        lso = self.high_watermark
        for first_offset in self._open_txns.values():
            lso = min(lso, first_offset)
        return lso

    def _absorb_producer_state(self, message: StoredMessage) -> None:
        """Rebuild idempotent-producer dedup state from replicated records,
        so this replica can keep deduplicating if it becomes leader."""
        self._track_transaction(message.headers, message.offset)
        producer_id = message.headers.get("__pid")
        producer_seq = message.headers.get("__seq")
        if producer_id is None or producer_seq is None:
            return
        if producer_seq > self._producer_seqs.get(producer_id, -1):
            self._producer_seqs[producer_id] = producer_seq
        cached = self._producer_results.get((producer_id, producer_seq))
        if cached is None:
            self._producer_results[(producer_id, producer_seq)] = ProduceResult(
                message.offset, message.offset, 0.0
            )
        else:
            cached.last_offset = max(cached.last_offset, message.offset)

    def record_follower_position(self, follower_id: int, leo: int) -> int:
        """Leader records a follower's LEO after a replica fetch; returns the
        (possibly advanced) high watermark."""
        self._check_leader(None)
        self._follower_leo[follower_id] = leo
        self._advance_high_watermark()
        return self.high_watermark

    def set_isr(self, isr: list[int]) -> None:
        """Controller pushed a new ISR; HW only depends on in-sync members."""
        if self.role == ROLE_LEADER:
            self._isr = list(isr)
            self._advance_high_watermark()

    def update_high_watermark(self, hw: int) -> None:
        """Follower learns the leader's HW (piggybacked on fetch responses)."""
        if hw > self.high_watermark:
            self.high_watermark = min(hw, self.log.log_end_offset)

    def _advance_high_watermark(self) -> None:
        if self.role != ROLE_LEADER:
            return
        leos = [self.log.log_end_offset]
        for broker_id in self._isr:
            if broker_id == self.broker_id:
                continue
            leos.append(self._follower_leo.get(broker_id, 0))
        new_hw = min(leos)
        if new_hw > self.high_watermark:
            self.high_watermark = new_hw

    def truncate_to(self, offset: int) -> int:
        """Follower reconciliation: drop any log tail past the leader's."""
        removed = self.log.truncate_to(offset)
        self.high_watermark = min(self.high_watermark, offset)
        return removed

    # -- introspection ----------------------------------------------------------------------

    @property
    def log_end_offset(self) -> int:
        return self.log.log_end_offset

    @property
    def earliest_offset(self) -> int:
        """Oldest offset readable on this replica, across both tiers.

        Equals ``log.log_start_offset`` for untiered partitions; with a cold
        tier it reaches back to the oldest archived record, so
        ``seek_to_beginning`` rewinds over the full retained history.
        """
        if self.cold_tier is not None:
            return self.cold_tier.earliest_offset
        return self.log.log_start_offset

    def follower_lag(self, follower_id: int) -> int:
        """Messages the follower is behind the leader."""
        self._check_leader(None)
        return self.log.log_end_offset - self._follower_leo.get(follower_id, 0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PartitionReplica({self.partition}, broker={self.broker_id}, "
            f"{self.role}, epoch={self.leader_epoch}, "
            f"leo={self.log_end_offset}, hw={self.high_watermark})"
        )
