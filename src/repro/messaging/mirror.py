"""Cross-datacenter mirroring (§5).

"The messaging layer, based on Apache Kafka, runs in 5 co-location centers,
spanning different geographical areas."

Geo-distribution in the Kafka ecosystem is done by *mirroring*: a consumer
in the source datacenter republishes topics into the target datacenter's
cluster (Kafka's MirrorMaker).  :class:`MirrorMaker` reproduces that:

* per-partition, order-preserving copy with keys/timestamps/headers intact
  (offsets are re-assigned by the target, as in the real tool);
* progress checkpointed through the *source* cluster's offset manager, so a
  restarted mirror resumes instead of re-copying;
* WAN costs: each mirrored batch pays a cross-datacenter round trip at a
  configurable RTT (tens of milliseconds vs. the intra-DC half-millisecond).

Internal control topics (``__``-prefixed) are never mirrored.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import (
    ConfigError,
    OffsetOutOfRangeError,
    TopicNotFoundError,
)
from repro.common.records import TopicPartition
from repro.messaging.cluster import ACKS_LEADER, MessagingCluster
from repro.messaging.config import ISOLATION_LEVELS

#: Default cross-datacenter round-trip time (continental WAN).
DEFAULT_WAN_RTT = 30e-3

#: Source-side transaction/idempotence bookkeeping stripped on re-produce:
#: a read_committed mirror only ever sees committed data, so carrying the
#: ``__txn`` flag over would open a phantom transaction on the target that
#: no marker ever closes (wedging the target's LSO forever).
_TXN_HEADERS = ("__txn", "__pid", "__seq")


@dataclass
class MirrorStats:
    """Outcome of one mirroring pass."""

    records_mirrored: int = 0
    simulated_seconds: float = 0.0
    per_topic: dict[str, int] = field(default_factory=dict)
    #: Records lost to a source retention sweep below the mirror position
    #: (the mirror reseats at the beginning offset instead of wedging).
    records_skipped: int = 0


class MirrorMaker:
    """Replicates topics from a source cluster into a target cluster."""

    def __init__(
        self,
        source: MessagingCluster,
        target: MessagingCluster,
        topics: list[str] | None = None,
        name: str = "mirror",
        wan_rtt: float = DEFAULT_WAN_RTT,
        batch: int = 500,
        acks: str = ACKS_LEADER,
        isolation: str = "read_committed",
    ) -> None:
        if source is target:
            raise ConfigError("source and target must be different clusters")
        if wan_rtt < 0:
            raise ConfigError("wan_rtt must be >= 0")
        if isolation not in ISOLATION_LEVELS:
            raise ConfigError(
                f"isolation must be one of {ISOLATION_LEVELS}, got {isolation!r}"
            )
        self.source = source
        self.target = target
        self.name = name
        self.wan_rtt = wan_rtt
        self.batch = batch
        self.acks = acks
        # read_committed by default: re-producing aborted transactional
        # records would launder them into committed data on the target.
        self.isolation = isolation
        self.group = f"__mirror-{name}"
        self._topics = list(topics) if topics is not None else None
        self._positions: dict[TopicPartition, int] = {}

    # -- topic selection / provisioning ------------------------------------------

    def mirrored_topics(self) -> list[str]:
        """Topics this mirror copies (explicit list or all non-internal)."""
        if self._topics is not None:
            return list(self._topics)
        return [t for t in self.source.topics() if not t.startswith("__")]

    def _ensure_target_topic(self, topic: str) -> None:
        if topic in self.target.topics():
            return
        source_config = self.source.topic_config(topic)
        replication = min(
            source_config.replication_factor, len(self.target.brokers())
        )
        self.target.create_topic(
            topic,
            num_partitions=source_config.num_partitions,
            replication_factor=replication,
            cleanup_policy=source_config.cleanup_policy,
        )

    def _seed_position(self, tp: TopicPartition) -> int:
        commit = self.source.offset_manager.fetch(self.group, tp)
        if commit is not None:
            return commit.offset
        return self.source.beginning_offset(tp)

    # -- mirroring ------------------------------------------------------------------

    def poll(self) -> MirrorStats:
        """Copy one batch per partition of every mirrored topic."""
        stats = MirrorStats()
        for topic in self.mirrored_topics():
            try:
                partitions = self.source.partitions_of(topic)
            except TopicNotFoundError:
                continue
            self._ensure_target_topic(topic)
            copied_for_topic = 0
            for tp in partitions:
                copied_for_topic += self._mirror_partition(tp, stats)
            if copied_for_topic:
                stats.per_topic[topic] = copied_for_topic
        return stats

    def _mirror_partition(self, tp: TopicPartition, stats: MirrorStats) -> int:
        position = self._positions.get(tp)
        if position is None:
            position = self._seed_position(tp)
        try:
            result = self.source.fetch(
                tp.topic, tp.partition, position, self.batch,
                isolation=self.isolation,
            )
        except OffsetOutOfRangeError:
            # A source retention sweep deleted records below our position
            # (or truncated above it).  Reseat at the earliest retained
            # offset and account for what the sweep cost us.
            reseated = self.source.beginning_offset(tp)
            stats.records_skipped += max(0, reseated - position)
            self._positions[tp] = reseated
            self.source.offset_manager.commit(
                self.group, tp, reseated, {"mirror": self.name, "reseated": True}
            )
            result = self.source.fetch(
                tp.topic, tp.partition, reseated, self.batch,
                isolation=self.isolation,
            )
            position = reseated
        stats.simulated_seconds += result.latency
        if result.records:
            entries = [
                (
                    r.key,
                    r.value,
                    r.timestamp,
                    {
                        k: v
                        for k, v in r.headers.items()
                        if k not in _TXN_HEADERS
                    },
                )
                for r in result.records
            ]
            batch_bytes = sum(r.size for r in result.records)
            # One WAN round trip carries the whole batch.
            stats.simulated_seconds += self.wan_rtt + (
                batch_bytes / self.source.cost_model.network_bandwidth
            )
            ack = self.target.produce(
                tp.topic, tp.partition, entries, acks=self.acks
            )
            stats.simulated_seconds += ack.latency
            stats.records_mirrored += len(entries)
        new_position = max(position, result.next_offset)
        if new_position != position:
            self._positions[tp] = new_position
            self.source.offset_manager.commit(
                self.group, tp, new_position, {"mirror": self.name}
            )
        else:
            self._positions[tp] = position
        return len(result.records)

    def run_until_synced(self, max_polls: int = 1000) -> int:
        """Poll until no partition has new data; returns records mirrored."""
        total = 0
        for _ in range(max_polls):
            self.source.tick(0.0)
            stats = self.poll()
            self.target.tick(0.0)  # let target-side replication commit
            total += stats.records_mirrored
            if stats.records_mirrored == 0:
                return total
        return total

    # -- monitoring -------------------------------------------------------------------

    def lag(self) -> int:
        """Records present at the source but not yet mirrored."""
        pending = 0
        for topic in self.mirrored_topics():
            for tp in self.source.partitions_of(topic):
                position = self._positions.get(tp)
                if position is None:
                    position = self._seed_position(tp)
                pending += max(0, self.source.end_offset(tp) - position)
        return pending

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MirrorMaker({self.name!r}, topics={self.mirrored_topics()})"
