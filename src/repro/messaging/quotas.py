"""Client quotas: messaging-layer multi-tenancy (§4.5).

"Multiple independent teams may be executing different applications on the
same cluster, leading to resource contention.  To retain a given
quality-of-service per application, while maintaining a high cluster
utilization, Liquid uses a resource management layer that isolates resources
on a per-application basis."

The processing layer's containers (§4.4 / `processing.containers`) isolate
CPU and memory; this module isolates the messaging layer's *bandwidth* the
way Kafka's client quotas do: each client id has a byte-rate allowance over
a sliding window, and requests that push it over are *throttled* — the
broker delays the response by exactly the time needed to bring the observed
rate back under the quota, so a misbehaving client slows itself down instead
of its neighbours.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.common.clock import Clock
from repro.common.errors import ConfigError


@dataclass(frozen=True)
class ClientQuota:
    """Byte-rate allowances for one client id."""

    produce_bytes_per_sec: float = float("inf")
    fetch_bytes_per_sec: float = float("inf")

    def __post_init__(self) -> None:
        if self.produce_bytes_per_sec <= 0 or self.fetch_bytes_per_sec <= 0:
            raise ConfigError("quota rates must be > 0")


class _RateTracker:
    """Sliding-window byte counter."""

    __slots__ = ("window", "_samples", "_total")

    def __init__(self, window: float) -> None:
        self.window = window
        self._samples: deque[tuple[float, int]] = deque()
        self._total = 0

    def record(self, now: float, nbytes: int) -> None:
        self._samples.append((now, nbytes))
        self._total += nbytes
        self._expire(now)

    def observed_rate(self, now: float) -> float:
        self._expire(now)
        return self._total / self.window

    def total_in_window(self, now: float) -> int:
        self._expire(now)
        return self._total

    def _expire(self, now: float) -> None:
        horizon = now - self.window
        while self._samples and self._samples[0][0] < horizon:
            _ts, nbytes = self._samples.popleft()
            self._total -= nbytes


class QuotaManager:
    """Tracks per-client byte rates and computes throttle delays.

    The throttle formula is Kafka's: when a client's windowed rate exceeds
    its quota, delay the response long enough that
    ``bytes_in_window / (window + delay) == quota``.
    """

    def __init__(self, clock: Clock, window_seconds: float = 1.0) -> None:
        if window_seconds <= 0:
            raise ConfigError("window_seconds must be > 0")
        self.clock = clock
        self.window = window_seconds
        self._quotas: dict[str, ClientQuota] = {}
        self._produce: dict[str, _RateTracker] = {}
        self._fetch: dict[str, _RateTracker] = {}
        self.throttle_events = 0

    def set_quota(self, client_id: str, quota: ClientQuota) -> None:
        if not client_id:
            raise ConfigError("client_id must be non-empty")
        self._quotas[client_id] = quota

    def remove_quota(self, client_id: str) -> None:
        self._quotas.pop(client_id, None)

    def quota_for(self, client_id: str) -> ClientQuota | None:
        return self._quotas.get(client_id)

    # -- accounting ------------------------------------------------------------------

    def record_produce(self, client_id: str | None, nbytes: int) -> float:
        """Account produced bytes; returns the throttle delay in seconds."""
        return self._record(client_id, nbytes, self._produce, "produce")

    def record_fetch(self, client_id: str | None, nbytes: int) -> float:
        """Account fetched bytes; returns the throttle delay in seconds."""
        return self._record(client_id, nbytes, self._fetch, "fetch")

    def _record(
        self,
        client_id: str | None,
        nbytes: int,
        trackers: dict[str, _RateTracker],
        kind: str,
    ) -> float:
        if client_id is None or client_id not in self._quotas:
            return 0.0
        quota = self._quotas[client_id]
        limit = (
            quota.produce_bytes_per_sec
            if kind == "produce"
            else quota.fetch_bytes_per_sec
        )
        if limit == float("inf"):
            return 0.0
        tracker = trackers.setdefault(client_id, _RateTracker(self.window))
        now = self.clock.now()
        tracker.record(now, nbytes)
        total = tracker.total_in_window(now)
        if total <= limit * self.window:
            return 0.0
        self.throttle_events += 1
        # Delay so that total / (window + delay) == limit.
        return total / limit - self.window

    def observed_produce_rate(self, client_id: str) -> float:
        tracker = self._produce.get(client_id)
        return tracker.observed_rate(self.clock.now()) if tracker else 0.0

    def observed_fetch_rate(self, client_id: str) -> float:
        tracker = self._fetch.get(client_id)
        return tracker.observed_rate(self.clock.now()) if tracker else 0.0
