"""Exactly-once transactions: the paper's "ongoing effort" (§4.3).

"There is no built-in support to detect duplicates that can occur after a
failure ... there is an ongoing effort to design and implement support for
exactly-once semantics."

This module implements that effort, following the design Kafka eventually
shipped (KIP-98), reduced to its semantics:

* a **transaction coordinator** maps a stable ``transactional_id`` to a
  producer id and an epoch; re-initialization bumps the epoch and *fences*
  the previous incarnation (:class:`~repro.common.errors.ProducerFencedError`);
* a :class:`TransactionalProducer` groups sends into atomic units:
  ``begin() … commit()/abort()`` writes **control markers** into every
  partition the transaction touched;
* partitions track open transactions and aborted ranges, exposing the
  **last stable offset** (LSO): ``read_committed`` consumers never see
  records of an open or aborted transaction, nor records past the first
  still-open transaction (preserving order);
* **offsets can join the transaction** (`send_offsets_to_transaction`), so a
  consume-transform-produce loop commits its input position atomically with
  its output — the full exactly-once processing pattern.

Commits are **crash-atomic**: once the coordinator decides a transaction
commits, the decision is recorded before any marker or offset is applied,
and a recovering incarnation (:meth:`TransactionCoordinator.initialize`)
*completes* the half-done commit instead of aborting it.  Marker writes and
offset commits are replayed in deterministic (sorted) order, so a crash at
any of the ``txn.*`` failpoints is invisible to ``read_committed`` readers:
they observe either nothing or the full transaction — never outputs without
offsets or vice versa.
"""

from __future__ import annotations

import itertools
import random
import zlib
from dataclasses import dataclass, field
from typing import Any

from repro.chaos.failpoints import failpoint
from repro.common.errors import (
    BrokerUnavailableError,
    ConfigError,
    MessagingError,
    NotEnoughReplicasError,
    NotLeaderForPartitionError,
    ProducerFencedError,
    StaleEpochError,
    TransactionError,
)
from repro.common.metrics import metric_name
from repro.common.partitioning import partition_for_key
from repro.common.records import TopicPartition
from repro.messaging.cluster import ACKS_ALL, MessagingCluster
from repro.observability.trace import current_tracer

#: Header keys for transactional records and control markers.
HDR_PID = "__pid"
HDR_TXN = "__txn"
HDR_CTRL = "__ctrl"
CTRL_COMMIT = "commit"
CTRL_ABORT = "abort"

#: Transaction observability: one instrument per lifecycle transition, plus
#: the marker/offset writes a commit or abort fans out into.
_M_BEGINS = metric_name("messaging", "transactions", "begins")
_M_COMMITS = metric_name("messaging", "transactions", "commits")
_M_ABORTS = metric_name("messaging", "transactions", "aborts")
_M_FENCINGS = metric_name("messaging", "transactions", "fencings")
_M_MARKERS = metric_name("messaging", "transactions", "markers_written")
_M_OFFSETS = metric_name("messaging", "transactions", "offsets_committed")
_M_COMMITS_RESUMED = metric_name(
    "messaging", "transactions", "commits_resumed"
)
_M_SEND_RETRIES = metric_name("messaging", "transactions", "send_retries")

#: Errors a transactional send retries under its original sequence number —
#: the same transient set the plain idempotent producer re-buffers on.
_RETRIABLE = (
    NotLeaderForPartitionError,
    BrokerUnavailableError,
    StaleEpochError,
    NotEnoughReplicasError,
)

def _sorted_partitions(partitions: set[TopicPartition]) -> list[TopicPartition]:
    """Deterministic marker/offset order regardless of PYTHONHASHSEED."""
    return sorted(partitions, key=lambda tp: (tp.topic, tp.partition))


@dataclass
class _TxnState:
    """Coordinator-side state of one transactional id."""

    producer_id: int
    epoch: int = 0
    in_flight: set[TopicPartition] = field(default_factory=set)
    open: bool = False
    pending_offsets: dict[tuple[str, TopicPartition], tuple[int, dict]] = field(
        default_factory=dict
    )
    #: Verdict durably decided but not yet fully applied ("commit"); a
    #: recovery completes it instead of aborting.  None = undecided.
    decided: str | None = None
    #: Markers still owed once a commit is decided (sorted; drained front
    #: to back so a crashed commit resumes exactly where it stopped).
    markers_pending: list[TopicPartition] = field(default_factory=list)
    #: Per-partition idempotence sequences.  They live here — not on the
    #: producer — so a restarted incarnation of the same transactional id
    #: continues the numbering and broker-side dedup stays correct.
    sequences: dict[TopicPartition, int] = field(default_factory=dict)


class TransactionCoordinator:
    """Maps transactional ids to fenced producer incarnations."""

    def __init__(self, cluster: MessagingCluster) -> None:
        self.cluster = cluster
        self._states: dict[str, _TxnState] = {}
        self.fencings = 0
        # Producer ids are allocated per coordinator (= per cluster), not
        # from process-global state: a same-seed replay on a fresh cluster
        # must assign identical pids, or record headers diverge.
        self._next_producer_id = itertools.count(1000)

    def initialize(self, transactional_id: str) -> tuple[int, int]:
        """Register/refresh a transactional id; returns (producer_id, epoch).

        Bumping the epoch fences any previous producer instance with the
        same id — its subsequent operations raise ProducerFencedError.  A
        transaction the fenced incarnation had already *decided* to commit
        is completed (remaining markers + offset commits); an undecided
        open transaction aborts.
        """
        state = self._states.get(transactional_id)
        if state is None:
            state = _TxnState(producer_id=next(self._next_producer_id))
            self._states[transactional_id] = state
        else:
            state.epoch += 1
            self.fencings += 1
            self.cluster.metrics.counter(_M_FENCINGS).increment()
            if state.decided == CTRL_COMMIT:
                # Crash landed mid-commit: roll the decision forward so the
                # new incarnation starts from a clean, fully-applied state.
                self.cluster.metrics.counter(_M_COMMITS_RESUMED).increment()
                self._complete_commit(transactional_id, state)
            elif state.open:
                # An incomplete, undecided transaction aborts.
                self._apply_abort(transactional_id, state)
        return state.producer_id, state.epoch

    def _state_for(self, transactional_id: str, epoch: int) -> _TxnState:
        state = self._states.get(transactional_id)
        if state is None:
            raise TransactionError(f"unknown transactional id {transactional_id!r}")
        if epoch != state.epoch:
            raise ProducerFencedError(
                f"{transactional_id!r}: epoch {epoch} fenced by {state.epoch}"
            )
        return state

    # -- transaction lifecycle ----------------------------------------------------

    def begin(self, transactional_id: str, epoch: int) -> None:
        state = self._state_for(transactional_id, epoch)
        if state.open:
            raise TransactionError(f"{transactional_id!r}: transaction already open")
        state.open = True
        self.cluster.metrics.counter(_M_BEGINS).increment()

    def add_partition(
        self, transactional_id: str, epoch: int, tp: TopicPartition
    ) -> None:
        state = self._state_for(transactional_id, epoch)
        if not state.open:
            raise TransactionError(f"{transactional_id!r}: no open transaction")
        state.in_flight.add(tp)

    def add_offsets(
        self,
        transactional_id: str,
        epoch: int,
        group: str,
        offsets: dict[TopicPartition, int],
        metadata: dict[str, Any] | None = None,
    ) -> None:
        state = self._state_for(transactional_id, epoch)
        if not state.open:
            raise TransactionError(f"{transactional_id!r}: no open transaction")
        for tp, offset in offsets.items():
            state.pending_offsets[(group, tp)] = (offset, dict(metadata or {}))

    def next_sequence(
        self, transactional_id: str, epoch: int, tp: TopicPartition
    ) -> int:
        """Allocate the next idempotence sequence for one partition.

        Sequences advance at allocation, not on success — a retried send
        replays its original sequence and the broker dedups it.
        """
        state = self._state_for(transactional_id, epoch)
        seq = state.sequences.get(tp, -1) + 1
        state.sequences[tp] = seq
        return seq

    def commit(self, transactional_id: str, epoch: int) -> None:
        """Atomically commit outputs + staged offsets.

        Two phases: *decide* (flip the verdict, snapshot the sorted marker
        plan), then *apply* (markers, then offset commits).  A crash after
        the decision point — any of the ``txn.commit.*`` failpoints — leaves
        a decided state that :meth:`initialize` rolls forward, so committed
        outputs are never observable without their offsets.  Re-invoking
        ``commit`` on a decided transaction resumes the apply phase.
        """
        state = self._state_for(transactional_id, epoch)
        if state.decided == CTRL_COMMIT:
            self._complete_commit(transactional_id, state)
            return
        if not state.open:
            raise TransactionError(f"{transactional_id!r}: no open transaction")
        failpoint("txn.commit", transactional_id=transactional_id)
        # Decision point: from here the transaction IS committed.
        state.decided = CTRL_COMMIT
        state.markers_pending = _sorted_partitions(state.in_flight)
        self._complete_commit(transactional_id, state)

    def _complete_commit(self, transactional_id: str, state: _TxnState) -> None:
        span = self._open_span("txn.commit", transactional_id, state)
        while state.markers_pending:
            tp = state.markers_pending[0]
            failpoint(
                "txn.commit.marker",
                transactional_id=transactional_id,
                partition=tp,
            )
            self._write_marker(tp, CTRL_COMMIT, state.producer_id)
            state.markers_pending.pop(0)
        failpoint("txn.commit.offsets", transactional_id=transactional_id)
        for (group, tp) in sorted(
            state.pending_offsets, key=lambda k: (k[0], k[1].topic, k[1].partition)
        ):
            offset, metadata = state.pending_offsets[(group, tp)]
            self.cluster.offset_manager.commit(group, tp, offset, metadata)
            self.cluster.metrics.counter(_M_OFFSETS).increment()
        state.pending_offsets.clear()
        state.in_flight.clear()
        state.open = False
        state.decided = None
        self.cluster.metrics.counter(_M_COMMITS).increment()
        self._close_span(span)

    def abort(self, transactional_id: str, epoch: int) -> None:
        state = self._state_for(transactional_id, epoch)
        if state.decided == CTRL_COMMIT:
            raise TransactionError(
                f"{transactional_id!r}: transaction already decided to commit"
            )
        if not state.open:
            raise TransactionError(f"{transactional_id!r}: no open transaction")
        self._apply_abort(transactional_id, state)

    def _apply_abort(self, transactional_id: str, state: _TxnState) -> None:
        span = self._open_span("txn.abort", transactional_id, state)
        for tp in _sorted_partitions(state.in_flight):
            self._write_marker(tp, CTRL_ABORT, state.producer_id)
        state.pending_offsets.clear()
        state.in_flight.clear()
        state.open = False
        self.cluster.metrics.counter(_M_ABORTS).increment()
        self._close_span(span)

    def _write_marker(
        self, tp: TopicPartition, verdict: str, producer_id: int
    ) -> None:
        self.cluster.produce(
            tp.topic,
            tp.partition,
            [(None, None, None, {HDR_CTRL: verdict, HDR_PID: producer_id})],
            acks=ACKS_ALL,
        )
        self.cluster.metrics.counter(_M_MARKERS).increment()

    def is_open(self, transactional_id: str) -> bool:
        state = self._states.get(transactional_id)
        return bool(state and state.open)

    def open_transactions(self) -> list[dict[str, Any]]:
        """Operational view of every still-open transaction (admin report)."""
        out = []
        for transactional_id in sorted(self._states):
            state = self._states[transactional_id]
            if not state.open:
                continue
            out.append(
                {
                    "transactional_id": transactional_id,
                    "producer_id": state.producer_id,
                    "epoch": state.epoch,
                    "partitions": [
                        str(tp) for tp in _sorted_partitions(state.in_flight)
                    ],
                    "pending_offsets": len(state.pending_offsets),
                    "decided": state.decided,
                }
            )
        return out

    # -- tracing -------------------------------------------------------------------

    def _open_span(self, name: str, transactional_id: str, state: _TxnState):
        tracer = current_tracer()
        if tracer is None:
            return None
        return tracer.open_span(
            name,
            None,
            self.cluster.clock.now(),
            transactional_id=transactional_id,
            producer_id=state.producer_id,
            epoch=state.epoch,
            partitions=len(state.in_flight) + len(state.markers_pending),
        )

    def _close_span(self, span) -> None:
        if span is not None:
            tracer = current_tracer()
            if tracer is not None:
                tracer.close(span, end=self.cluster.clock.now())


class TransactionalProducer:
    """Producer whose sends are atomic per transaction.

    Usage::

        producer = TransactionalProducer(cluster, "etl-job-7")
        producer.begin()
        producer.send("out", value, key=key)
        producer.send_offsets_to_transaction("job-etl", {tp: offset})
        producer.commit()   # or .abort()

    Sends carry per-partition idempotence sequences (allocated by the
    coordinator, so they survive restarts of the same transactional id) and
    retry transient broker errors under the original sequence — the broker
    dedups replays of an append that actually stood, same as the plain
    idempotent :class:`~repro.messaging.producer.Producer`.
    """

    def __init__(
        self,
        cluster: MessagingCluster,
        transactional_id: str,
        coordinator: TransactionCoordinator | None = None,
        max_retries: int = 3,
        retry_backoff: float = 0.05,
        retry_backoff_max: float = 1.0,
        linger_messages: int = 1,
    ) -> None:
        if not transactional_id:
            raise ConfigError("transactional_id must be non-empty")
        if linger_messages < 1:
            raise ConfigError("linger_messages must be >= 1")
        self.cluster = cluster
        self.transactional_id = transactional_id
        self.coordinator = (
            coordinator
            if coordinator is not None
            else get_transaction_coordinator(cluster)
        )
        self.producer_id, self.epoch = self.coordinator.initialize(
            transactional_id
        )
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.retry_backoff_max = retry_backoff_max
        self.retries = 0
        # Deterministic jitter: seeded from (id, epoch) so a same-seed
        # replay of a whole run reproduces every backoff exactly.
        self._retry_rng = random.Random(
            zlib.crc32(transactional_id.encode()) ^ self.epoch
        )
        self._rr = itertools.count()
        # Staged-but-unsent records, per partition.  Like the plain
        # producer's linger buffer, but scoped to the transaction: commit
        # flushes, abort discards (they were never on the wire).  Each entry
        # carries the sequence it was allocated at staging time, so a batch
        # is produced under its first record's sequence and broker-side
        # dedup of a replayed batch stays correct.
        self.linger_messages = linger_messages
        self._buffers: dict[
            TopicPartition,
            list[tuple[tuple[Any, Any, float | None, dict[str, Any]], int]],
        ] = {}

    # -- lifecycle ------------------------------------------------------------------

    def begin(self) -> None:
        self.coordinator.begin(self.transactional_id, self.epoch)

    def commit(self) -> None:
        self.flush()
        self.coordinator.commit(self.transactional_id, self.epoch)

    def abort(self) -> None:
        # Buffered records were never produced; aborting simply drops them.
        self._buffers.clear()
        self.coordinator.abort(self.transactional_id, self.epoch)

    @property
    def in_transaction(self) -> bool:
        return self.coordinator.is_open(self.transactional_id)

    # -- sends ----------------------------------------------------------------------

    def send(
        self,
        topic: str,
        value: Any,
        key: Any = None,
        partition: int | None = None,
        timestamp: float | None = None,
        headers: dict[str, Any] | None = None,
    ):
        """Send one record inside the current transaction (acks=all).

        With ``linger_messages == 1`` the record is produced immediately and
        its ack returned.  With batching enabled it is staged and ``None``
        returned; the partition's batch is produced when it reaches
        ``linger_messages`` records (ack returned then) or at commit.
        """
        if not self.coordinator.is_open(self.transactional_id):
            raise TransactionError("send outside a transaction; call begin()")
        num_partitions = len(self.cluster.partitions_of(topic))
        if partition is None:
            if key is not None:
                partition = partition_for_key(key, num_partitions)
            else:
                partition = next(self._rr) % num_partitions
        tp = TopicPartition(topic, partition)
        self.coordinator.add_partition(self.transactional_id, self.epoch, tp)
        txn_headers = {
            **(headers or {}),
            HDR_PID: self.producer_id,
            HDR_TXN: True,
        }
        sequence = self.coordinator.next_sequence(
            self.transactional_id, self.epoch, tp
        )
        entry = (key, value, timestamp, txn_headers)
        if self.linger_messages == 1:
            return self._produce_batch(tp, [(entry, sequence)])
        buffer = self._buffers.setdefault(tp, [])
        buffer.append((entry, sequence))
        if len(buffer) >= self.linger_messages:
            del self._buffers[tp]
            return self._produce_batch(tp, buffer)
        return None

    def flush(self) -> list:
        """Produce every staged batch; returns their acks.

        Partitions flush in deterministic (sorted) order so a same-seed
        replay appends identically.  ``commit`` flushes implicitly.
        """
        if not self._buffers:
            return []
        # Fencing check up front: a zombie incarnation must not push its
        # staged records onto the wire under a stale epoch.
        self.coordinator._state_for(self.transactional_id, self.epoch)
        acks = []
        for tp in _sorted_partitions(set(self._buffers)):
            acks.append(self._produce_batch(tp, self._buffers.pop(tp)))
        return acks

    def _produce_batch(self, tp, batch):
        """One produce of staged entries, retried under its base sequence."""
        entries = [entry for entry, _seq in batch]
        sequence = batch[0][1]
        attempts = 0
        while True:
            try:
                return self.cluster.produce(
                    tp.topic,
                    tp.partition,
                    entries,
                    acks=ACKS_ALL,
                    producer_id=self.producer_id,
                    producer_seq=sequence,
                )
            except _RETRIABLE as exc:
                attempts += 1
                self.retries += 1
                self.cluster.metrics.counter(_M_SEND_RETRIES).increment()
                if attempts > self.max_retries:
                    raise MessagingError(
                        f"transactional produce to {tp} failed after "
                        f"{attempts} attempts"
                    ) from exc
                self.cluster.tick(self._backoff(attempts))

    def _backoff(self, attempts: int) -> float:
        delay = min(
            self.retry_backoff_max, self.retry_backoff * (2 ** (attempts - 1))
        )
        return delay * (0.5 + 0.5 * self._retry_rng.random())

    def send_offsets_to_transaction(
        self,
        group: str,
        offsets: dict[TopicPartition, int],
        metadata: dict[str, Any] | None = None,
    ) -> None:
        """Stage input-offset commits to apply atomically with the outputs."""
        self.coordinator.add_offsets(
            self.transactional_id, self.epoch, group, offsets, metadata
        )


def get_transaction_coordinator(cluster: MessagingCluster) -> TransactionCoordinator:
    """One coordinator per cluster, created on first use."""
    coordinator = getattr(cluster, "_txn_coordinator", None)
    if coordinator is None:
        coordinator = TransactionCoordinator(cluster)
        cluster._txn_coordinator = coordinator
    return coordinator
