"""Exactly-once transactions: the paper's "ongoing effort" (§4.3).

"There is no built-in support to detect duplicates that can occur after a
failure ... there is an ongoing effort to design and implement support for
exactly-once semantics."

This module implements that effort, following the design Kafka eventually
shipped (KIP-98), reduced to its semantics:

* a **transaction coordinator** maps a stable ``transactional_id`` to a
  producer id and an epoch; re-initialization bumps the epoch and *fences*
  the previous incarnation (:class:`~repro.common.errors.ProducerFencedError`);
* a :class:`TransactionalProducer` groups sends into atomic units:
  ``begin() … commit()/abort()`` writes **control markers** into every
  partition the transaction touched;
* partitions track open transactions and aborted ranges, exposing the
  **last stable offset** (LSO): ``read_committed`` consumers never see
  records of an open or aborted transaction, nor records past the first
  still-open transaction (preserving order);
* **offsets can join the transaction** (`send_offsets_to_transaction`), so a
  consume-transform-produce loop commits its input position atomically with
  its output — the full exactly-once processing pattern.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.common.errors import (
    ConfigError,
    ProducerFencedError,
    TransactionError,
)
from repro.common.partitioning import partition_for_key
from repro.common.records import TopicPartition
from repro.messaging.cluster import ACKS_ALL, MessagingCluster

#: Header keys for transactional records and control markers.
HDR_PID = "__pid"
HDR_TXN = "__txn"
HDR_CTRL = "__ctrl"
CTRL_COMMIT = "commit"
CTRL_ABORT = "abort"

_txn_producer_ids = itertools.count(1000)


@dataclass
class _TxnState:
    """Coordinator-side state of one transactional id."""

    producer_id: int
    epoch: int = 0
    in_flight: set[TopicPartition] = field(default_factory=set)
    open: bool = False
    pending_offsets: dict[tuple[str, TopicPartition], tuple[int, dict]] = field(
        default_factory=dict
    )


class TransactionCoordinator:
    """Maps transactional ids to fenced producer incarnations."""

    def __init__(self, cluster: MessagingCluster) -> None:
        self.cluster = cluster
        self._states: dict[str, _TxnState] = {}
        self.fencings = 0

    def initialize(self, transactional_id: str) -> tuple[int, int]:
        """Register/refresh a transactional id; returns (producer_id, epoch).

        Bumping the epoch fences any previous producer instance with the
        same id — its subsequent operations raise ProducerFencedError.
        """
        state = self._states.get(transactional_id)
        if state is None:
            state = _TxnState(producer_id=next(_txn_producer_ids))
            self._states[transactional_id] = state
        else:
            state.epoch += 1
            self.fencings += 1
            # An incomplete transaction of the fenced incarnation aborts.
            if state.open:
                self._write_markers(state, CTRL_ABORT)
                state.open = False
                state.in_flight.clear()
                state.pending_offsets.clear()
        return state.producer_id, state.epoch

    def _state_for(self, transactional_id: str, epoch: int) -> _TxnState:
        state = self._states.get(transactional_id)
        if state is None:
            raise TransactionError(f"unknown transactional id {transactional_id!r}")
        if epoch != state.epoch:
            raise ProducerFencedError(
                f"{transactional_id!r}: epoch {epoch} fenced by {state.epoch}"
            )
        return state

    # -- transaction lifecycle ----------------------------------------------------

    def begin(self, transactional_id: str, epoch: int) -> None:
        state = self._state_for(transactional_id, epoch)
        if state.open:
            raise TransactionError(f"{transactional_id!r}: transaction already open")
        state.open = True

    def add_partition(
        self, transactional_id: str, epoch: int, tp: TopicPartition
    ) -> None:
        state = self._state_for(transactional_id, epoch)
        if not state.open:
            raise TransactionError(f"{transactional_id!r}: no open transaction")
        state.in_flight.add(tp)

    def add_offsets(
        self,
        transactional_id: str,
        epoch: int,
        group: str,
        offsets: dict[TopicPartition, int],
        metadata: dict[str, Any] | None = None,
    ) -> None:
        state = self._state_for(transactional_id, epoch)
        if not state.open:
            raise TransactionError(f"{transactional_id!r}: no open transaction")
        for tp, offset in offsets.items():
            state.pending_offsets[(group, tp)] = (offset, dict(metadata or {}))

    def commit(self, transactional_id: str, epoch: int) -> None:
        state = self._state_for(transactional_id, epoch)
        if not state.open:
            raise TransactionError(f"{transactional_id!r}: no open transaction")
        self._write_markers(state, CTRL_COMMIT)
        for (group, tp), (offset, metadata) in state.pending_offsets.items():
            self.cluster.offset_manager.commit(group, tp, offset, metadata)
        state.pending_offsets.clear()
        state.in_flight.clear()
        state.open = False

    def abort(self, transactional_id: str, epoch: int) -> None:
        state = self._state_for(transactional_id, epoch)
        if not state.open:
            raise TransactionError(f"{transactional_id!r}: no open transaction")
        self._write_markers(state, CTRL_ABORT)
        state.pending_offsets.clear()
        state.in_flight.clear()
        state.open = False

    def _write_markers(self, state: _TxnState, verdict: str) -> None:
        for tp in state.in_flight:
            self.cluster.produce(
                tp.topic,
                tp.partition,
                [(
                    None,
                    None,
                    None,
                    {HDR_CTRL: verdict, HDR_PID: state.producer_id},
                )],
                acks=ACKS_ALL,
            )

    def is_open(self, transactional_id: str) -> bool:
        state = self._states.get(transactional_id)
        return bool(state and state.open)


class TransactionalProducer:
    """Producer whose sends are atomic per transaction.

    Usage::

        producer = TransactionalProducer(cluster, "etl-job-7")
        producer.begin()
        producer.send("out", value, key=key)
        producer.send_offsets_to_transaction("job-etl", {tp: offset})
        producer.commit()   # or .abort()
    """

    def __init__(
        self,
        cluster: MessagingCluster,
        transactional_id: str,
        coordinator: TransactionCoordinator | None = None,
    ) -> None:
        if not transactional_id:
            raise ConfigError("transactional_id must be non-empty")
        self.cluster = cluster
        self.transactional_id = transactional_id
        self.coordinator = (
            coordinator
            if coordinator is not None
            else get_transaction_coordinator(cluster)
        )
        self.producer_id, self.epoch = self.coordinator.initialize(
            transactional_id
        )
        self._sequence = 0
        self._rr = itertools.count()

    # -- lifecycle ------------------------------------------------------------------

    def begin(self) -> None:
        self.coordinator.begin(self.transactional_id, self.epoch)

    def commit(self) -> None:
        self.coordinator.commit(self.transactional_id, self.epoch)

    def abort(self) -> None:
        self.coordinator.abort(self.transactional_id, self.epoch)

    # -- sends ----------------------------------------------------------------------

    def send(
        self,
        topic: str,
        value: Any,
        key: Any = None,
        partition: int | None = None,
        timestamp: float | None = None,
        headers: dict[str, Any] | None = None,
    ):
        """Send one record inside the current transaction (acks=all)."""
        if not self.coordinator.is_open(self.transactional_id):
            raise TransactionError("send outside a transaction; call begin()")
        num_partitions = len(self.cluster.partitions_of(topic))
        if partition is None:
            if key is not None:
                partition = partition_for_key(key, num_partitions)
            else:
                partition = next(self._rr) % num_partitions
        tp = TopicPartition(topic, partition)
        self.coordinator.add_partition(self.transactional_id, self.epoch, tp)
        txn_headers = {
            **(headers or {}),
            HDR_PID: self.producer_id,
            HDR_TXN: True,
        }
        self._sequence += 1
        return self.cluster.produce(
            topic,
            partition,
            [(key, value, timestamp, txn_headers)],
            acks=ACKS_ALL,
        )

    def send_offsets_to_transaction(
        self,
        group: str,
        offsets: dict[TopicPartition, int],
        metadata: dict[str, Any] | None = None,
    ) -> None:
        """Stage input-offset commits to apply atomically with the outputs."""
        self.coordinator.add_offsets(
            self.transactional_id, self.epoch, group, offsets, metadata
        )


def get_transaction_coordinator(cluster: MessagingCluster) -> TransactionCoordinator:
    """One coordinator per cluster, created on first use."""
    coordinator = getattr(cluster, "_txn_coordinator", None)
    if coordinator is None:
        coordinator = TransactionCoordinator(cluster)
        cluster._txn_coordinator = coordinator
    return coordinator
