"""Follower replication loop and ISR maintenance (§4.3).

"A follower broker acts as a normal consumer, reading data from its lead
broker and appending it to its local log.  This means that the followers for
a given partition may not have incorporated all data from the lead broker
when it fails."

The :class:`ReplicationManager` is driven from the cluster tick: each pass,
every follower replica fetches from its leader, reconciles divergent tails
(truncation after leader changes), and the controller's ISR is shrunk or
re-expanded based on observed lag — the "configurable minimum up-to-date
threshold" the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import (
    BrokerUnavailableError,
    ConfigError,
    NotLeaderForPartitionError,
    OffsetOutOfRangeError,
)
from repro.common.metrics import metric_name
from repro.common.records import TopicPartition
from repro.chaos.failpoints import SKIP, failpoint

# Physical bytes a background catch-up pass moved leader -> follower.
_M_WIRE_BYTES = metric_name("messaging", "cluster", "bytes_on_wire")


@dataclass
class ReplicationStats:
    """Outcome of one replication pass."""

    messages_copied: int = 0
    partitions_synced: int = 0
    isr_shrinks: list[tuple[TopicPartition, int]] = field(default_factory=list)
    isr_expansions: list[tuple[TopicPartition, int]] = field(default_factory=list)
    truncations: list[tuple[TopicPartition, int, int]] = field(default_factory=list)


class ReplicationManager:
    """Copies data from leaders to followers and maintains the ISR.

    ``max_lag_messages`` is the in-sync threshold: a follower further behind
    than this after a pass is dropped from the ISR; a follower fully caught
    up is re-admitted.  ``max_fetch`` bounds per-pass copying so catch-up
    bandwidth is finite, as on real networks.
    """

    def __init__(
        self,
        cluster: "MessagingCluster",  # noqa: F821 - forward ref, avoids cycle
        max_lag_messages: int = 4,
        max_fetch: int = 5000,
    ) -> None:
        if max_lag_messages < 0:
            raise ConfigError("max_lag_messages must be >= 0")
        if max_fetch <= 0:
            raise ConfigError("max_fetch must be > 0")
        self.cluster = cluster
        self.max_lag_messages = max_lag_messages
        self.max_fetch = max_fetch

    def poll(self) -> ReplicationStats:
        """Run one replication pass over all partitions."""
        stats = ReplicationStats()
        controller = self.cluster.controller
        for partition in controller.partitions():
            state = controller.partition_state(partition)
            if state.leader is None:
                continue
            leader_broker = self.cluster.broker(state.leader)
            if not leader_broker.online:
                continue
            for follower_id in state.replicas:
                if follower_id == state.leader:
                    continue
                follower_broker = self.cluster.broker(follower_id)
                if not follower_broker.online:
                    continue
                self._sync_follower(
                    partition, state.leader, follower_id, stats
                )
        return stats

    def _sync_follower(
        self,
        partition: TopicPartition,
        leader_id: int,
        follower_id: int,
        stats: ReplicationStats,
    ) -> None:
        # Armed with `skipping`, this stalls the follower: no fetch, no ISR
        # maintenance — the lag just accumulates until the stall is lifted.
        if failpoint("replication.sync", partition=partition, follower=follower_id) is SKIP:
            return
        controller = self.cluster.controller
        leader_broker = self.cluster.broker(leader_id)
        follower_broker = self.cluster.broker(follower_id)
        leader_replica = leader_broker.replica(partition)
        follower_replica = follower_broker.replica(partition)

        # Epoch reconciliation: a follower that lived through a leadership
        # change (e.g. a deposed leader) may hold an un-replicated tail the
        # new leader never had — possibly in the SAME offset range as the new
        # leader's fresh writes.  Anything above the follower's own high
        # watermark was never committed, so it is discarded before catch-up
        # (pre-KIP-101 Kafka truncate-to-HW semantics).
        if follower_replica.leader_epoch < leader_replica.leader_epoch:
            safe_point = min(
                follower_replica.high_watermark, leader_replica.log_end_offset
            )
            removed = follower_replica.truncate_to(safe_point)
            if removed:
                stats.truncations.append((partition, follower_id, removed))
            follower_replica.become_follower(leader_replica.leader_epoch)
        elif follower_replica.log_end_offset > leader_replica.log_end_offset:
            removed = follower_replica.truncate_to(leader_replica.log_end_offset)
            if removed:
                stats.truncations.append((partition, follower_id, removed))

        fetch_offset = follower_replica.log_end_offset
        try:
            messages, leader_leo, leader_hw, frames = leader_broker.replica_fetch(
                partition, fetch_offset, follower_id, self.max_fetch
            )
        except (
            BrokerUnavailableError,
            NotLeaderForPartitionError,
            OffsetOutOfRangeError,
        ):
            return
        if messages:
            # Frames ride along so compressed batches land on the follower as
            # the same opaque blobs the leader stores (no re-encode).
            follower_replica.replicate_batch(messages, frames=frames)
            stats.messages_copied += len(messages)
            self.cluster.metrics.counter(_M_WIRE_BYTES).increment(
                sum(m.stored_size for m in messages)
            )
            # Report the new position so the leader can advance the HW
            # without waiting for the next pass.
            leader_hw = leader_replica.record_follower_position(
                follower_id, follower_replica.log_end_offset
            )
        follower_replica.update_high_watermark(leader_hw)
        stats.partitions_synced += 1

        # ISR maintenance against the post-fetch lag.
        lag = leader_replica.log_end_offset - follower_replica.log_end_offset
        isr = controller.isr_for(partition)
        if lag > self.max_lag_messages and follower_id in isr:
            new_isr = controller.shrink_isr(partition, follower_id)
            leader_replica.set_isr(new_isr)
            stats.isr_shrinks.append((partition, follower_id))
        elif lag == 0 and follower_id not in isr:
            new_isr = controller.expand_isr(partition, follower_id)
            leader_replica.set_isr(new_isr)
            stats.isr_expansions.append((partition, follower_id))
