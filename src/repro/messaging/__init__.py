"""Messaging layer: a Kafka-like distributed publish/subscribe system."""

from repro.messaging.broker import Broker
from repro.messaging.cluster import (
    ACKS_ALL,
    ACKS_LEADER,
    ACKS_NONE,
    MessagingCluster,
    ProduceAck,
)
from repro.messaging.config import ConsumerConfig, ProducerConfig
from repro.messaging.consumer import Consumer
from repro.messaging.consumer_group import (
    ASSIGN_RANGE,
    ASSIGN_ROUND_ROBIN,
    GroupCoordinator,
)
from repro.messaging.offset_manager import OFFSETS_TOPIC, OffsetCommit, OffsetManager
from repro.messaging.partition import PartitionReplica, ProduceResult
from repro.messaging.producer import (
    PARTITIONER_HASH,
    PARTITIONER_ROUND_ROBIN,
    Producer,
)
from repro.messaging.replication import ReplicationManager, ReplicationStats
from repro.messaging.topic import CLEANUP_COMPACT, CLEANUP_DELETE, TopicConfig
from repro.messaging.transactions import (
    TransactionalProducer,
    TransactionCoordinator,
    get_transaction_coordinator,
)

__all__ = [
    "Broker",
    "MessagingCluster",
    "ProduceAck",
    "ACKS_NONE",
    "ACKS_LEADER",
    "ACKS_ALL",
    "Consumer",
    "GroupCoordinator",
    "ASSIGN_RANGE",
    "ASSIGN_ROUND_ROBIN",
    "OffsetManager",
    "OffsetCommit",
    "OFFSETS_TOPIC",
    "PartitionReplica",
    "ProduceResult",
    "Producer",
    "ProducerConfig",
    "ConsumerConfig",
    "PARTITIONER_HASH",
    "PARTITIONER_ROUND_ROBIN",
    "ReplicationManager",
    "ReplicationStats",
    "TopicConfig",
    "CLEANUP_DELETE",
    "CLEANUP_COMPACT",
    "TransactionalProducer",
    "TransactionCoordinator",
    "get_transaction_coordinator",
]
