"""Consumer client (§3.1).

"Consumers pull data from brokers by providing a set of offsets.  After a
pull request, brokers return the latest data after the specified offsets.
This approach makes it efficient to maintain the latest consumed data, i.e.
it requires only storing a single integer per partition."

The consumer supports both manual partition assignment (:meth:`assign`) and
group subscription (:meth:`subscribe`), positions seeded from committed
offsets, time- and metadata-based rewind (the paper's rewindability
property), and offset commits carrying annotations through the offset
manager.
"""

from __future__ import annotations

import itertools
from typing import Any, Literal

from repro.common.errors import (
    BrokerUnavailableError,
    ConfigError,
    NotLeaderForPartitionError,
    OffsetOutOfRangeError,
)
from repro.common.metrics import metric_name
from repro.common.records import TRACE_HEADER, ConsumerRecord, TopicPartition
from repro.messaging.cluster import MessagingCluster
from repro.messaging.config import ConsumerConfig
from repro.messaging.consumer_group import GroupCoordinator
from repro.messaging.fetchbuffer import FetchBuffer
from repro.observability.trace import current_tracer

AutoOffsetReset = Literal["earliest", "latest"]

_consumer_ids = itertools.count(1)

#: Polls (per partition) served from a buffer fetched ahead of demand.
_M_PREFETCH_HITS = metric_name("messaging", "consumer", "prefetch_hits")


class Consumer:
    """Pull-based consumer with optional group membership.

    Construction takes either a frozen
    :class:`~repro.messaging.config.ConsumerConfig` or the legacy keyword
    arguments (delegated to the dataclass; unknown keywords raise
    :class:`~repro.common.errors.ConfigError`).  The ``group_coordinator``
    stays a constructor argument: it is live runtime wiring, not config.
    """

    def __init__(
        self,
        cluster: MessagingCluster,
        config: ConsumerConfig | None = None,
        group_coordinator: GroupCoordinator | None = None,
        **kwargs: Any,
    ) -> None:
        if config is not None and kwargs:
            raise ConfigError(
                "pass either a ConsumerConfig or keyword options, not both"
            )
        if config is None:
            config = ConsumerConfig.from_kwargs(**kwargs)
        if config.group is not None and group_coordinator is None:
            raise ConfigError("group subscription requires a group_coordinator")
        self.config = config
        self.cluster = cluster
        self.group = config.group
        self.group_coordinator = group_coordinator
        self.auto_offset_reset = config.auto_offset_reset
        self.max_poll_messages = config.max_poll_messages
        self.isolation_level = config.isolation_level
        self.client_id = config.client_id
        self.key_serde = config.key_serde
        self.value_serde = config.value_serde
        self.prefetch = config.prefetch
        self.member_id = f"consumer-{next(_consumer_ids)}"
        self._assignment: list[TopicPartition] = []
        self._positions: dict[TopicPartition, int] = {}
        # One buffered fetch response per partition: the remainder of a
        # partially-drained poll, or a response fetched ahead of demand.
        self._buffers: dict[TopicPartition, FetchBuffer] = {}
        self._paused: set[TopicPartition] = set()
        self._generation: int | None = None
        self._subscribed_topics: set[str] = set()
        self._rr = 0  # round-robin cursor over assigned partitions
        self.last_poll_latency = 0.0
        self.records_consumed = 0
        self.closed = False

    # -- assignment ------------------------------------------------------------------

    def assign(self, partitions: list[TopicPartition]) -> None:
        """Manually assign partitions (no group management)."""
        if self.group is not None:
            raise ConfigError("cannot mix manual assign with group subscribe")
        self._assignment = list(partitions)
        self._seed_positions()

    def subscribe(self, topics: list[str] | set[str]) -> None:
        """Join the consumer group for ``topics``; assignment is managed."""
        if self.group is None or self.group_coordinator is None:
            raise ConfigError("subscribe requires a group")
        self._subscribed_topics = set(topics)
        self._generation = self.group_coordinator.join(
            self.group, self.member_id, self._subscribed_topics
        )
        self._refresh_assignment()

    def _refresh_assignment(self) -> None:
        assert self.group is not None and self.group_coordinator is not None
        self._assignment = self.group_coordinator.assignment_for(
            self.group, self.member_id
        )
        self._generation = self.group_coordinator.generation(self.group)
        self._positions = {
            tp: pos for tp, pos in self._positions.items() if tp in self._assignment
        }
        # A rebalance may hand our partitions elsewhere; buffered responses
        # for them are stale the moment the new owner starts consuming.
        self._buffers = {
            tp: buf for tp, buf in self._buffers.items() if tp in self._assignment
        }
        self._paused = {tp for tp in self._paused if tp in self._assignment}
        self._seed_positions()

    def _seed_positions(self) -> None:
        """Initialize positions: committed offset first, else reset policy."""
        for tp in self._assignment:
            if tp in self._positions:
                continue
            committed = None
            if self.group is not None:
                committed = self.cluster.offset_manager.fetch(self.group, tp)
            if committed is not None:
                self._positions[tp] = committed.offset
            elif self.auto_offset_reset == "earliest":
                self._positions[tp] = self.cluster.beginning_offset(tp)
            else:
                self._positions[tp] = self.cluster.end_offset(tp)

    def assignment(self) -> list[TopicPartition]:
        return list(self._assignment)

    # -- flow control ----------------------------------------------------------------

    def pause(self, *partitions: TopicPartition) -> None:
        """Stop fetching from ``partitions`` until :meth:`resume`.

        Paused partitions stay assigned (and owned, under group membership);
        :meth:`poll` simply spends none of its budget on them.  Buffered
        responses are kept — they resume exactly where they stopped.
        """
        for tp in partitions:
            self._require_assigned(tp)
            self._paused.add(tp)

    def resume(self, *partitions: TopicPartition) -> None:
        """Undo :meth:`pause`; unknown or never-paused partitions are a no-op."""
        for tp in partitions:
            self._paused.discard(tp)

    def paused(self) -> set[TopicPartition]:
        """Partitions currently excluded from the poll fetch budget."""
        return set(self._paused)

    # -- poll loop -------------------------------------------------------------------

    def poll(self, max_messages: int | None = None) -> list[ConsumerRecord]:
        """Fetch the next batch across assigned partitions.

        Partitions are serviced round-robin so one busy partition cannot
        starve the others.  Detects group rebalances (generation change) and
        refreshes the assignment before fetching.

        Responses arrive as lazy :class:`~repro.messaging.fetchbuffer.FetchBuffer`
        objects: compressed batches are inflated only when drained into the
        poll.  With ``prefetch=True`` the consumer issues the next fetch as
        soon as a buffer drains, so its latency overlaps whatever simulated
        time the application spends processing the previous poll.
        """
        if self.closed:
            raise ConfigError("consumer is closed")
        self._maybe_rejoin()
        budget = max_messages if max_messages is not None else self.max_poll_messages
        records: list[ConsumerRecord] = []
        latency = 0.0
        if not self._assignment:
            self.last_poll_latency = 0.0
            return records
        n = len(self._assignment)
        for i in range(n):
            if budget <= 0:
                break
            tp = self._assignment[(self._rr + i) % n]
            if tp in self._paused:
                continue
            buffer = self._buffers.pop(tp, None)
            if buffer is not None and buffer.exhausted:
                buffer = None
            if buffer is None:
                try:
                    result = self.cluster.fetch(
                        tp.topic, tp.partition, self._positions[tp], budget,
                        isolation=self.isolation_level,
                        client_id=self.client_id,
                        lazy=True,
                    )
                except OffsetOutOfRangeError as exc:
                    self._positions[tp] = self._reset_position(tp, exc)
                    continue
                except (BrokerUnavailableError, NotLeaderForPartitionError):
                    continue  # transient during failover; retry next poll
                buffer = FetchBuffer(
                    result.batches or [],
                    result.next_offset,
                    result.latency,
                    issued_at=self.cluster.clock.now(),
                )
            if buffer.latency:
                if buffer.prefetched:
                    # The fetch has been in flight since it was issued; only
                    # the portion that did not overlap application time is
                    # still owed.
                    elapsed = self.cluster.clock.now() - buffer.issued_at
                    latency += max(0.0, buffer.latency - elapsed)
                else:
                    latency += buffer.latency
                buffer.latency = 0.0
            batch, inflate_latency = buffer.take(budget, self.cluster.cost_model)
            latency += inflate_latency
            if batch:
                if buffer.prefetched:
                    self.cluster.metrics.counter(_M_PREFETCH_HITS).increment(1)
                    buffer.prefetched = False
                if self.key_serde is not None or self.value_serde is not None:
                    batch = [self._deserialize(r) for r in batch]
                records.extend(batch)
                budget -= len(batch)
            # Advance by the scan position, not the last delivered record:
            # skipped markers/aborted records must not wedge the consumer.
            position = buffer.position()
            if position is not None:
                self._positions[tp] = max(self._positions[tp], position)
            if not buffer.exhausted:
                self._buffers[tp] = buffer
            elif self.prefetch:
                self._issue_prefetch(tp)
        self._rr = (self._rr + 1) % n
        self.last_poll_latency = latency
        self.records_consumed += len(records)
        tracer = current_tracer()
        if tracer is not None and records:
            now = self.cluster.clock.now()
            for r in records:
                ctx = r.headers.get(TRACE_HEADER) if r.headers else None
                if ctx is not None:
                    span = tracer.record(
                        "consumer.poll", ctx, now, now,
                        topic=r.topic, partition=r.partition, offset=r.offset,
                        member=self.member_id,
                    )
                    if self.group is not None:
                        span.attrs["group"] = self.group
        return records

    def _issue_prefetch(self, tp: TopicPartition) -> None:
        """Fetch the next response for ``tp`` before the application asks.

        The buffer records its simulated issue time; when the next poll
        drains it, only fetch latency that did not overlap the application's
        processing time is charged (see :meth:`poll`).
        """
        if tp in self._paused:
            return
        try:
            result = self.cluster.fetch(
                tp.topic, tp.partition, self._positions[tp],
                self.max_poll_messages,
                isolation=self.isolation_level,
                client_id=self.client_id,
                lazy=True,
            )
        except (
            OffsetOutOfRangeError,
            BrokerUnavailableError,
            NotLeaderForPartitionError,
        ):
            return  # next poll falls back to a synchronous fetch
        self._buffers[tp] = FetchBuffer(
            result.batches or [],
            result.next_offset,
            result.latency,
            issued_at=self.cluster.clock.now(),
            prefetched=True,
        )

    def _deserialize(self, record: ConsumerRecord) -> ConsumerRecord:
        key = record.key
        value = record.value
        if self.key_serde is not None and key is not None:
            key = self.key_serde.deserialize(key)
        if self.value_serde is not None:
            value = self.value_serde.deserialize(value)
        return ConsumerRecord(
            topic=record.topic,
            partition=record.partition,
            offset=record.offset,
            key=key,
            value=value,
            timestamp=record.timestamp,
            headers=record.headers,
            # Keep the stored wire size: recomputing from the deserialized
            # objects would skew quota/WAN accounting away from the bytes
            # actually transferred.
            size=record.size,
        )

    def _maybe_rejoin(self) -> None:
        if self.group is None or self.group_coordinator is None:
            return
        if not self._subscribed_topics:
            return
        current = self.group_coordinator.generation(self.group)
        if current != self._generation:
            self._refresh_assignment()

    def _reset_position(self, tp: TopicPartition, exc: OffsetOutOfRangeError) -> int:
        """Position fell off the retained log (retention won the race)."""
        self._buffers.pop(tp, None)
        if self.auto_offset_reset == "earliest":
            return self.cluster.beginning_offset(tp)
        return self.cluster.end_offset(tp)

    # -- seeking (rewindability, §3.1/§4.2) -----------------------------------------------

    def seek(self, tp: TopicPartition, offset: int) -> None:
        self._require_assigned(tp)
        self._positions[tp] = offset
        # Any buffered response is for the old position.
        self._buffers.pop(tp, None)

    def seek_to_beginning(self, tp: TopicPartition) -> None:
        self.seek(tp, self.cluster.beginning_offset(tp))

    def seek_to_end(self, tp: TopicPartition) -> None:
        self.seek(tp, self.cluster.end_offset(tp))

    def seek_to_timestamp(self, tp: TopicPartition, timestamp: float) -> int:
        """Rewind to the first record at/after ``timestamp``; returns the
        offset (the log end if no such record exists)."""
        offset = self.cluster.offset_for_timestamp(tp, timestamp)
        if offset is None:
            offset = self.cluster.end_offset(tp)
        self.seek(tp, offset)
        return offset

    def position(self, tp: TopicPartition) -> int:
        self._require_assigned(tp)
        return self._positions[tp]

    def _require_assigned(self, tp: TopicPartition) -> None:
        if tp not in self._positions:
            raise ConfigError(f"{tp} is not assigned to this consumer")

    # -- commits -----------------------------------------------------------------------------

    def commit(self, metadata: dict[str, Any] | None = None) -> None:
        """Checkpoint current positions (with annotations) for the group."""
        if self.group is None:
            raise ConfigError("commit requires a group")
        for tp in self._assignment:
            self.cluster.offset_manager.commit(
                self.group, tp, self._positions[tp], metadata
            )

    def committed(self, tp: TopicPartition) -> int | None:
        if self.group is None:
            return None
        commit = self.cluster.offset_manager.fetch(self.group, tp)
        return commit.offset if commit is not None else None

    # -- lifecycle -----------------------------------------------------------------------------

    def close(self) -> None:
        """Leave the group (triggering a rebalance) and stop consuming."""
        if self.closed:
            return
        if self.group is not None and self.group_coordinator is not None:
            if self._subscribed_topics:
                self.group_coordinator.leave(self.group, self.member_id)
        self.closed = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Consumer({self.member_id}, group={self.group!r}, "
            f"assigned={len(self._assignment)})"
        )
