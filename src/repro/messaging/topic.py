"""Topic definitions and per-topic configuration (§3.1).

A topic is the unit of publish/subscribe: "data is divided into messages,
which are stored under different topics ... topics are divided into
partitions, which are distributed on a cluster of brokers."

Per-topic knobs mirror the paper's §4.1 operational controls: retention
(time and/or size), cleanup policy (delete vs. compact), segment sizing, and
the §4.3 durability knob ``min_insync_replicas``.  ``tiered`` switches the
topic to archive-before-delete retention: sealed segments are offloaded to
the cluster's cold store instead of destroyed, keeping the full history
rewindable (§2.2) while the hot log stays bounded.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.storage.log import LogConfig
from repro.storage.retention import RetentionConfig
from repro.storage.tiered.config import TieredConfig

#: Cleanup policies (Kafka's ``cleanup.policy``).
CLEANUP_DELETE = "delete"
CLEANUP_COMPACT = "compact"

#: Topics in this namespace are owned by the system itself — consumer
#: offsets, telemetry feeds — and are excluded from user-facing defaults
#: (lag-based health rules skip ``__``-prefixed groups, ``Liquid.create_feed``
#: refuses the namespace).
SYSTEM_TOPIC_PREFIX = "__"


def is_system_topic(name: str) -> bool:
    """True for system-owned topics (``__liquid_offsets``, ``__telemetry.*``)."""
    return name.startswith(SYSTEM_TOPIC_PREFIX)


@dataclass(frozen=True)
class TopicConfig:
    """Static configuration of one topic."""

    name: str
    num_partitions: int = 1
    replication_factor: int = 1
    cleanup_policy: str = CLEANUP_DELETE
    retention: RetentionConfig = field(default_factory=RetentionConfig)
    log: LogConfig = field(default_factory=LogConfig)
    min_insync_replicas: int = 1
    flush_timeout: float = 5.0
    tiered: TieredConfig | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("topic name must be non-empty")
        if "/" in self.name:
            raise ConfigError(f"topic name may not contain '/': {self.name!r}")
        if self.num_partitions <= 0:
            raise ConfigError("num_partitions must be > 0")
        if self.replication_factor <= 0:
            raise ConfigError("replication_factor must be > 0")
        if self.cleanup_policy not in (CLEANUP_DELETE, CLEANUP_COMPACT):
            raise ConfigError(
                f"unknown cleanup_policy {self.cleanup_policy!r}; "
                f"expected {CLEANUP_DELETE!r} or {CLEANUP_COMPACT!r}"
            )
        if not 1 <= self.min_insync_replicas <= self.replication_factor:
            raise ConfigError(
                "min_insync_replicas must be in [1, replication_factor]"
            )
        if self.flush_timeout < 0:
            raise ConfigError("flush_timeout must be >= 0")
        if self.tiered is not None and self.compacted:
            raise ConfigError(
                "tiered storage applies to delete-policy topics; compacted "
                "topics retain their full keyspace in the hot tier"
            )

    @property
    def compacted(self) -> bool:
        return self.cleanup_policy == CLEANUP_COMPACT
