"""Brokers: the machines of the messaging layer (§3.1).

"Each broker runs on a different physical machine that handles topics and
the partitions for these topics by answering requests from clients."

A broker owns one simulated page cache (its machine's RAM) shared by all
partition replicas it hosts, plus per-topic maintenance state (retention
enforcement, compaction).  All client-visible operations go through
:meth:`produce` / :meth:`fetch`, which add request overhead and enforce
leadership; replication traffic uses :meth:`replica_fetch`.
"""

from __future__ import annotations

from typing import Any

from repro.common.clock import Clock
from repro.common.compression import BatchFrame
from repro.common.costmodel import CostModel
from repro.common.errors import (
    BrokerUnavailableError,
    ConfigError,
    PartitionNotFoundError,
)
from repro.common.metrics import MetricsRegistry, metric_name
from repro.common.records import StoredMessage, TopicPartition
from repro.chaos.failpoints import failpoint
from repro.storage.compaction import CompactionConfig, LogCompactor
from repro.storage.log import PartitionLog, ReadResult
from repro.storage.pagecache import PageCache
from repro.storage.retention import RetentionEnforcer
from repro.storage.tiered import ColdTier, ObjectStore
from repro.messaging.partition import PartitionReplica, ProduceResult
from repro.messaging.topic import TopicConfig

# Metric names precomputed once (layer.component.metric convention).
_M_MESSAGES_IN = metric_name("messaging", "broker", "messages_in")
_M_MESSAGES_OUT = metric_name("messaging", "broker", "messages_out")
_M_PRODUCE_LATENCY = metric_name("messaging", "broker", "produce_latency")
_M_FETCH_LATENCY = metric_name("messaging", "broker", "fetch_latency")
_M_RETENTION_DELETED = metric_name("messaging", "broker", "retention_deleted")
_M_RETENTION_ARCHIVED = metric_name("messaging", "broker", "retention_archived")
_M_COMPACTION_REMOVED = metric_name("messaging", "broker", "compaction_removed")
#: Wire/storage bytes avoided by compressed batches (logical minus wire).
_M_BYTES_SAVED = metric_name("messaging", "broker", "bytes_saved")


class Broker:
    """One broker node hosting a set of partition replicas."""

    def __init__(
        self,
        broker_id: int,
        clock: Clock,
        cost_model: CostModel,
        page_cache_bytes: int = 256 * 1024 * 1024,
        metrics: MetricsRegistry | None = None,
        object_store: ObjectStore | None = None,
    ) -> None:
        self.broker_id = broker_id
        self.clock = clock
        self.cost_model = cost_model
        self.object_store = object_store
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.page_cache = PageCache(
            clock=clock,
            cost_model=cost_model,
            capacity_bytes=page_cache_bytes,
            metrics=self.metrics,
        )
        self.online = True
        self._replicas: dict[TopicPartition, PartitionReplica] = {}
        self._topic_configs: dict[str, TopicConfig] = {}
        self._compactor = LogCompactor(CompactionConfig(), clock=clock)

    # -- partition hosting ----------------------------------------------------------

    def host_partition(
        self, partition: TopicPartition, config: TopicConfig
    ) -> PartitionReplica:
        """Create a local replica of ``partition`` on this broker."""
        if partition in self._replicas:
            raise ConfigError(f"{partition} already hosted on broker {self.broker_id}")
        log = PartitionLog(
            name=f"broker-{self.broker_id}/{partition}",
            config=config.log,
            clock=self.clock,
            cost_model=self.cost_model,
            page_cache=self.page_cache,
        )
        replica = PartitionReplica(partition, self.broker_id, log)
        if config.tiered is not None:
            if self.object_store is None:
                raise ConfigError(
                    f"topic {partition.topic!r} requests tiered storage but "
                    f"broker {self.broker_id} has no object store"
                )
            # Namespace excludes the broker id: every replica of a partition
            # archives to the same keys, so duplicate uploads dedupe.
            replica.cold_tier = ColdTier(
                log,
                self.object_store,
                namespace=f"{partition.topic}/{partition.partition}",
                config=config.tiered,
                metrics=self.metrics,
                clock=self.clock,
            )
        self._replicas[partition] = replica
        self._topic_configs[partition.topic] = config
        return replica

    def replica(self, partition: TopicPartition) -> PartitionReplica:
        replica = self._replicas.get(partition)
        if replica is None:
            raise PartitionNotFoundError(
                f"{partition} not hosted on broker {self.broker_id}"
            )
        return replica

    def hosts(self, partition: TopicPartition) -> bool:
        return partition in self._replicas

    def replicas(self) -> list[PartitionReplica]:
        return list(self._replicas.values())

    def led_partitions(self) -> list[TopicPartition]:
        return [tp for tp, r in self._replicas.items() if r.role == "leader"]

    # -- client request paths -----------------------------------------------------------

    def _check_online(self) -> None:
        if not self.online:
            raise BrokerUnavailableError(f"broker {self.broker_id} is offline")

    def produce(
        self,
        partition: TopicPartition,
        entries: list[tuple[Any, Any, float, dict[str, Any]]],
        epoch: int | None = None,
        producer_id: int | None = None,
        producer_seq: int | None = None,
        frame: BatchFrame | None = None,
    ) -> tuple[ProduceResult, float]:
        """Append a batch on the leader replica; returns (result, latency)."""
        failpoint("broker.produce", broker=self.broker_id, partition=partition)
        self._check_online()
        replica = self.replica(partition)
        result = replica.append_batch(
            entries, epoch, producer_id, producer_seq, frame=frame
        )
        latency = self.cost_model.request(len(entries)) + result.latency
        self.metrics.counter(_M_MESSAGES_IN).increment(len(entries))
        self.metrics.histogram(_M_PRODUCE_LATENCY).observe(latency)
        if frame is not None and not result.duplicate:
            saved = frame.payload_bytes - frame.wire_bytes
            if saved > 0:
                self.metrics.counter(_M_BYTES_SAVED).increment(saved)
        return result, latency

    def fetch(
        self,
        partition: TopicPartition,
        offset: int,
        max_messages: int = 100,
        max_bytes: int | None = None,
        isolation: str = "read_uncommitted",
    ) -> tuple[ReadResult, float]:
        """Consumer fetch (committed data only); returns (result, latency)."""
        failpoint("broker.fetch", broker=self.broker_id, partition=partition)
        self._check_online()
        replica = self.replica(partition)
        result = replica.fetch(
            offset, max_messages, max_bytes, committed_only=True,
            isolation=isolation,
        )
        latency = self.cost_model.request(len(result.messages)) + result.latency
        self.metrics.counter(_M_MESSAGES_OUT).increment(len(result.messages))
        self.metrics.histogram(_M_FETCH_LATENCY).observe(latency)
        return result, latency

    def replica_fetch(
        self,
        partition: TopicPartition,
        offset: int,
        follower_id: int,
        max_messages: int = 1000,
    ) -> tuple[list[StoredMessage], int, int, list[tuple[int, int, BatchFrame]]]:
        """Follower fetch from this (leader) broker.

        Returns ``(messages, leader_leo, leader_hw, frames)``.  As in Kafka,
        the fetch *offset itself* tells the leader how far the follower has
        got: the leader records it and may advance the high watermark.
        ``frames`` are the compressed-batch registry entries covering the
        returned run, shipped alongside so the follower stores the same
        opaque blobs.
        """
        self._check_online()
        replica = self.replica(partition)
        hw = replica.record_follower_position(follower_id, offset)
        result = replica.fetch(offset, max_messages, committed_only=False)
        frames: list[tuple[int, int, BatchFrame]] = []
        if result.messages:
            frames = replica.log.frames_between(
                result.messages[0].offset, result.messages[-1].offset
            )
        return result.messages, replica.log_end_offset, hw, frames

    # -- maintenance (driven by the cluster tick) -------------------------------------------

    def run_retention(self) -> int:
        """Enforce retention on all delete-policy replicas; returns messages
        deleted.  Tiered replicas archive each segment before dropping it."""
        deleted = 0
        archived = 0
        for partition, replica in self._replicas.items():
            config = self._topic_configs[partition.topic]
            if config.compacted or not config.retention.enabled:
                continue
            archiver = (
                replica.cold_tier.archiver
                if replica.cold_tier is not None
                else None
            )
            enforcer = RetentionEnforcer(
                config.retention, self.clock, archiver=archiver
            )
            result = enforcer.enforce(replica.log)
            deleted += result.messages_deleted
            archived += result.segments_archived
        if deleted:
            self.metrics.counter(_M_RETENTION_DELETED).increment(deleted)
        if archived:
            self.metrics.counter(_M_RETENTION_ARCHIVED).increment(archived)
        return deleted

    def run_compaction(self) -> int:
        """Compact all compact-policy replicas; returns messages removed."""
        removed = 0
        for partition, replica in self._replicas.items():
            config = self._topic_configs[partition.topic]
            if not config.compacted:
                continue
            result = self._compactor.compact(replica.log)
            removed += result.messages_removed
        if removed:
            self.metrics.counter(_M_COMPACTION_REMOVED).increment(removed)
        return removed

    # -- lifecycle ----------------------------------------------------------------------------

    def shutdown(self) -> None:
        """Crash/stop the broker.  Logs survive (they are disk-backed); the
        page cache does not (it is RAM)."""
        self.online = False
        for replica in self._replicas.values():
            replica.mark_offline()
        # Losing the machine loses its RAM: cold cache on restart.
        for partition in self._replicas:
            for segment in self._replicas[partition].log.segments():
                self.page_cache.forget_file(
                    self._replicas[partition].log._file_id(segment)
                )
            cold_tier = self._replicas[partition].cold_tier
            if cold_tier is not None:
                cold_tier.reader.drop_cache()

    def startup(self) -> None:
        """Restart after a crash; replicas come back as followers that must
        re-sync before rejoining any ISR."""
        self.online = True
        for replica in self._replicas.values():
            replica.become_follower(replica.leader_epoch)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "online" if self.online else "offline"
        return f"Broker({self.broker_id}, {state}, replicas={len(self._replicas)})"
