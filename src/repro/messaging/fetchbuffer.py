"""Zero-copy fetch buffers: batch-granular lazy decompression for consumers.

A fetch response is not a flat record list but a sequence of *batches* —
some plain (materialized :class:`~repro.common.records.ConsumerRecord`
lists), some still the compressed :class:`~repro.common.compression.BatchFrame`
the producer shipped.  A framed batch stays compressed until the consumer
actually drains into it: :meth:`FetchBatch.inflate` decodes the frame's
payload through a memoryview (no intermediate copy of the blob), charges the
simulated inflate CPU once, and memoizes the records.  A poll that stops
mid-response therefore never inflates the batches behind its cursor.

:class:`FetchBuffer` holds one response's batches plus the bookkeeping a
prefetching consumer needs: the fetch latency still owed, the simulated
issue time (so latency that overlapped application processing is not
re-charged), and the position a partially-drained poll should commit.
"""

from __future__ import annotations

from repro.common.compression import BatchFrame
from repro.common.costmodel import CostModel
from repro.common.records import (
    RECORD_FRAMING_BYTES,
    TRACE_HEADER,
    ConsumerRecord,
    StoredMessage,
    estimate_size,
)


def record_from_stored(
    topic: str, partition: int, message: StoredMessage
) -> ConsumerRecord:
    """Materialize one stored record into a consumer record (eager path)."""
    return ConsumerRecord(
        topic=topic,
        partition=partition,
        offset=message.offset,
        key=message.key,
        value=message.value,
        timestamp=message.timestamp,
        headers=message.headers,
        # Logical size minus log framing == the payload size the record
        # would recompute; carrying it avoids re-walking keys/values/headers
        # on every quota/WAN accounting pass.
        size=message.size - RECORD_FRAMING_BYTES,
    )


class FetchBatch:
    """One batch of a fetch response: either materialized or still framed."""

    __slots__ = ("topic", "partition", "records", "frame", "base_offset")

    def __init__(
        self,
        topic: str,
        partition: int,
        records: list[ConsumerRecord] | None = None,
        frame: BatchFrame | None = None,
        base_offset: int = 0,
    ) -> None:
        self.topic = topic
        self.partition = partition
        self.records = records
        self.frame = frame
        self.base_offset = base_offset

    @property
    def count(self) -> int:
        if self.records is not None:
            return len(self.records)
        return self.frame.count

    @property
    def compressed(self) -> bool:
        return self.records is None

    def inflate(self, cost_model: CostModel) -> tuple[list[ConsumerRecord], float]:
        """Return the batch's records, decompressing at most once.

        The returned latency is the simulated inflate CPU for a framed batch
        on its first touch, ``0.0`` afterwards and for plain batches.
        """
        if self.records is not None:
            return self.records, 0.0
        frame = self.frame
        latency = cost_model.decompress(frame.payload_bytes)
        # Batch-header state rides uncompressed on the frame; re-attach it so
        # frame-served records are indistinguishable from eagerly stored ones.
        pid_headers = None
        extra = 0
        if frame.producer_id is not None and frame.producer_seq is not None:
            pid_headers = {
                "__pid": frame.producer_id,
                "__seq": frame.producer_seq,
            }
            extra = estimate_size(pid_headers)
        contexts = frame.trace_contexts
        records = []
        for i, (key, value, timestamp, headers) in enumerate(frame.entries()):
            if pid_headers is not None:
                headers = {**headers, **pid_headers}
            if contexts and contexts[i] is not None:
                headers = dict(headers)
                headers[TRACE_HEADER] = contexts[i]
            records.append(
                ConsumerRecord(
                    topic=self.topic,
                    partition=self.partition,
                    offset=self.base_offset + i,
                    key=key,
                    value=value,
                    timestamp=timestamp,
                    headers=headers,
                    size=frame.sizes[i] + extra,
                )
            )
        self.records = records
        return records, latency


def build_fetch_batches(
    topic: str,
    partition: int,
    messages: list[StoredMessage],
    frames: list[tuple[int, int, BatchFrame]],
) -> list[FetchBatch]:
    """Group a fetch response's records into frame-backed and plain batches.

    A frame stands in for its records only when the response contains the
    frame's *entire* offset range contiguously — partial visibility (high
    watermark cut, compaction, skipped markers) falls back to the
    materialized records, so correctness never depends on frame coverage.
    """
    batches: list[FetchBatch] = []
    if not messages:
        return batches
    if not frames:
        return [
            FetchBatch(
                topic,
                partition,
                records=[record_from_stored(topic, partition, m) for m in messages],
            )
        ]
    plain: list[StoredMessage] = []

    def flush_plain() -> None:
        if plain:
            batches.append(
                FetchBatch(
                    topic,
                    partition,
                    records=[
                        record_from_stored(topic, partition, m) for m in plain
                    ],
                )
            )
            plain.clear()

    i = 0
    fi = 0
    n = len(messages)
    while i < n:
        offset = messages[i].offset
        while fi < len(frames) and frames[fi][1] < offset:
            fi += 1
        if fi < len(frames):
            base, last, frame = frames[fi]
            end = i + frame.count
            # Offsets strictly increase, so matching endpoints over exactly
            # ``count`` records proves the whole frame range is present.
            if (
                offset == base
                and end <= n
                and messages[end - 1].offset == last
            ):
                flush_plain()
                batches.append(
                    FetchBatch(topic, partition, frame=frame, base_offset=base)
                )
                i = end
                fi += 1
                continue
        plain.append(messages[i])
        i += 1
    flush_plain()
    return batches


def inflate_all(
    batches: list[FetchBatch], cost_model: CostModel
) -> tuple[list[ConsumerRecord], float]:
    """Materialize every batch (legacy eager path); returns records + CPU."""
    records: list[ConsumerRecord] = []
    latency = 0.0
    for batch in batches:
        recs, lat = batch.inflate(cost_model)
        records.extend(recs)
        latency += lat
    return records, latency


class FetchBuffer:
    """One fetch response buffered for (pre)fetching consumers.

    Tracks a drain cursor across the response's batches so a poll can take
    fewer records than were fetched without inflating what it leaves behind,
    and remembers when the fetch was issued so a prefetched response only
    charges the latency that did *not* overlap application processing.
    """

    __slots__ = (
        "batches",
        "next_offset",
        "latency",
        "issued_at",
        "prefetched",
        "_index",
        "_cursor",
        "_last_taken",
    )

    def __init__(
        self,
        batches: list[FetchBatch],
        next_offset: int,
        latency: float,
        issued_at: float,
        prefetched: bool = False,
    ) -> None:
        self.batches = batches
        self.next_offset = next_offset
        self.latency = latency
        self.issued_at = issued_at
        self.prefetched = prefetched
        self._index = 0
        self._cursor = 0
        self._last_taken: int | None = None

    @property
    def exhausted(self) -> bool:
        return self._index >= len(self.batches)

    def remaining(self) -> int:
        total = 0
        for i in range(self._index, len(self.batches)):
            total += self.batches[i].count
        return total - self._cursor

    def take(
        self, limit: int, cost_model: CostModel
    ) -> tuple[list[ConsumerRecord], float]:
        """Drain up to ``limit`` records; returns them + inflate latency."""
        out: list[ConsumerRecord] = []
        latency = 0.0
        while limit > 0 and self._index < len(self.batches):
            batch = self.batches[self._index]
            records, lat = batch.inflate(cost_model)
            latency += lat
            available = len(records) - self._cursor
            if available <= limit:
                out.extend(records[self._cursor:])
                limit -= available
                self._index += 1
                self._cursor = 0
            else:
                out.extend(records[self._cursor : self._cursor + limit])
                self._cursor += limit
                limit = 0
        if out:
            self._last_taken = out[-1].offset
        return out, latency

    def position(self) -> int | None:
        """Offset the consumer should resume from after the drain so far.

        ``next_offset`` once the buffer is fully drained (markers skipped at
        the tail are then stepped over); one past the last delivered record
        while records remain buffered; ``None`` if nothing was taken yet.
        """
        if self.exhausted:
            return self.next_offset
        if self._last_taken is not None:
            return self._last_taken + 1
        return None
