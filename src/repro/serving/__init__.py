"""State serving: queryable nearline state with standby-backed failover.

The read path over job state (Liquid §5's serving story):

* :class:`~repro.serving.replica.StandbyReplica` — a warm store copy kept
  current by tailing the changelog; promotion pays only a catch-up tail;
* :class:`~repro.serving.server.StateServer` — per-task ``get`` / ``range``
  / ``approximate_count`` with snapshot-at-checkpoint and bounded-staleness
  modes;
* :class:`~repro.serving.router.StateQueryRouter` — routes keys to the
  owning shard with the producer's own partitioner.
"""

from repro.serving.replica import CatchUpStats, StandbyReplica
from repro.serving.router import StateQueryRouter
from repro.serving.server import (
    CONSISTENCY_BOUNDED,
    CONSISTENCY_MODES,
    CONSISTENCY_SNAPSHOT,
    QueryResult,
    StateServer,
)

__all__ = [
    "CatchUpStats",
    "StandbyReplica",
    "StateQueryRouter",
    "CONSISTENCY_BOUNDED",
    "CONSISTENCY_MODES",
    "CONSISTENCY_SNAPSHOT",
    "QueryResult",
    "StateServer",
]
