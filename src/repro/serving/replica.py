"""Standby replicas: hot store copies maintained by tailing the changelog.

Reactive Liquid (arXiv:1902.05968) motivates keeping *warm* copies of task
state on other containers so that failover and elastic re-placement do not
cost availability: instead of replaying a store's whole compacted changelog
from offset 0 (the cold path in :mod:`repro.processing.recovery`), the new
owner adopts a standby's store and pays only the catch-up *tail* — the
changelog records published since the standby last caught up.

A :class:`StandbyReplica` is exactly that machinery: a local
:class:`~repro.processing.store.KeyValueStore` plus a position in one
changelog partition, advanced by :meth:`catch_up`.  The same class backs
three consumers of the idea:

* **failover standbys** owned by the job runner (``num_standby_replicas``),
  kept warm at checkpoint boundaries and promoted on recovery/migration;
* **snapshot followers** inside a :class:`~repro.serving.server.StateServer`,
  capped at the last checkpoint's changelog offset for
  snapshot-at-checkpoint reads;
* **stale-tolerant serving copies** the
  :class:`~repro.serving.router.StateQueryRouter` reads for load spreading.

Catch-up reads honour the job's isolation level: under exactly-once the
changelog is written transactionally, so ``read_committed`` tails only ever
apply entries whose checkpoint committed — a promoted standby can never
resurrect state from an aborted transaction.

A retention storm can delete changelog segments a slow standby still needs
(the same hazard the MirrorMaker fix in PR 8 handled): :meth:`catch_up`
then *reseats* — clears the store, rewinds to ``beginning_offset`` and
replays from there — rather than crashing.  On a compacted changelog the
surviving head carries the latest value per live key, so the reseated
replay converges to the correct state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.chaos.failpoints import failpoint
from repro.common.errors import OffsetOutOfRangeError
from repro.common.metrics import metric_name, metric_segment
from repro.common.records import TopicPartition
from repro.processing.state import changelog_topic_name
from repro.processing.store import KeyValueStore, make_store


@dataclass
class CatchUpStats:
    """What one catch-up pass applied and what it (simulatedly) cost."""

    records_applied: int = 0
    simulated_seconds: float = 0.0
    #: Offsets jumped over because retention deleted them before the replica
    #: could read them (only ever non-zero on a reseat).
    records_skipped: int = 0
    #: Whether the pass had to clear the store and rewind to the beginning.
    reseated: bool = False

    def merge(self, other: "CatchUpStats") -> None:
        self.records_applied += other.records_applied
        self.simulated_seconds += other.simulated_seconds
        self.records_skipped += other.records_skipped
        self.reseated = self.reseated or other.reseated


class StandbyReplica:
    """One store copy kept warm by tailing one changelog partition."""

    def __init__(
        self,
        cluster,
        job_name: str,
        store_name: str,
        task_id: int,
        *,
        store_type: str = "memory",
        store_options: dict[str, Any] | None = None,
        isolation: str = "read_uncommitted",
        replica_id: int = 0,
        batch: int = 500,
    ) -> None:
        self.cluster = cluster
        self.job_name = job_name
        self.store_name = store_name
        self.task_id = task_id
        self.replica_id = replica_id
        self.isolation = isolation
        self.batch = batch
        self.tp = TopicPartition(
            changelog_topic_name(job_name, store_name), task_id
        )
        self.store: KeyValueStore = make_store(
            store_type, **(store_options or {})
        )
        #: Next changelog offset to apply.  ``None`` until the first
        #: catch-up seats the replica at the partition's earliest offset.
        self.position: int | None = None
        self.records_applied = 0
        self.reseats = 0
        #: Simulated time of the last completed catch-up (staleness bound).
        self.caught_up_at = cluster.clock.now()
        segment = metric_segment(job_name)
        metrics = cluster.metrics
        self._c_applied = metrics.counter(
            metric_name("serving", "standby", segment, "records_applied")
        )
        self._c_reseats = metrics.counter(
            metric_name("serving", "standby", segment, "reseats")
        )

    # -- introspection ------------------------------------------------------------

    def lag(self) -> int:
        """Changelog records published but not yet applied here."""
        end = self.cluster.end_offset(self.tp)
        if self.position is None:
            return end - self.cluster.beginning_offset(self.tp)
        return max(0, end - self.position)

    # -- the tail loop ------------------------------------------------------------

    def catch_up(
        self, limit_offset: int | None = None, max_records: int | None = None
    ) -> CatchUpStats:
        """Apply changelog records up to the partition end (or ``limit_offset``).

        Deliberately does **not** advance the cluster clock or run
        replication passes: a standby lives on another container and its
        reads must not perturb the simulated timeline of the job it shadows
        (the 0-vs-N-standbys byte-identity property depends on this).  The
        fetch latencies it pays are reported in the returned stats and the
        ``serving.standby.*`` instruments, not charged to the job.
        """
        failpoint(
            "serving.catch_up",
            partition=self.tp,
            position=self.position,
            replica=self.replica_id,
        )
        stats = CatchUpStats()
        if self.position is None:
            self.position = self.cluster.beginning_offset(self.tp)
        end = self.cluster.end_offset(self.tp)
        if limit_offset is not None:
            end = min(end, limit_offset)
        while self.position < end:
            if max_records is not None and stats.records_applied >= max_records:
                break
            budget = self.batch
            if max_records is not None:
                budget = min(budget, max_records - stats.records_applied)
            try:
                result = self.cluster.fetch(
                    self.tp.topic,
                    self.tp.partition,
                    self.position,
                    budget,
                    isolation=self.isolation,
                )
            except OffsetOutOfRangeError:
                # Retention deleted the range we were about to read.  Reseat
                # at the surviving head: clear and replay — the compacted
                # head holds the newest value per live key, so the rebuilt
                # store converges on the correct state.
                reseated = self.cluster.beginning_offset(self.tp)
                stats.records_skipped += max(0, reseated - self.position)
                stats.reseated = True
                self.reseats += 1
                self._c_reseats.increment(1)
                self.store.clear()
                self.position = reseated
                end = self.cluster.end_offset(self.tp)
                if limit_offset is not None:
                    end = min(end, limit_offset)
                continue
            stats.simulated_seconds += result.latency
            for record in result.records:
                if record.offset >= end:
                    break
                if record.value is None:
                    self.store.delete(record.key)
                else:
                    self.store.put(record.key, record.value)
                stats.records_applied += 1
            if result.next_offset <= self.position:
                break  # no progress (e.g. everything above the LSO)
            self.position = min(result.next_offset, end)
        self.records_applied += stats.records_applied
        if stats.records_applied:
            self._c_applied.increment(stats.records_applied)
        self.caught_up_at = self.cluster.clock.now()
        return stats

    # -- failover ----------------------------------------------------------------

    def promote(self) -> tuple[KeyValueStore, CatchUpStats]:
        """Final catch-up, then hand the store to the new task incarnation.

        The returned stats cover only the catch-up *tail* — that is the
        entire point of standby promotion: recovery pays for the records
        published since the standby last caught up, not the whole changelog.
        After promotion the replica no longer owns the store; callers
        discard it and seed a fresh replacement.
        """
        failpoint(
            "serving.promote",
            partition=self.tp,
            position=self.position,
            replica=self.replica_id,
        )
        stats = self.catch_up()
        return self.store, stats

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"StandbyReplica({self.job_name!r}/{self.store_name!r}"
            f"[{self.task_id}]#{self.replica_id}, position={self.position}, "
            f"applied={self.records_applied})"
        )
