"""Per-task state servers: the read path over one task's stores.

Liquid's nearline results are only useful if front-ends can *read* them
(§5's serving use cases); a :class:`StateServer` is the per-task endpoint
that answers ``get`` / ``range`` / ``approximate_count`` over the stores of
one task, in one of two consistency modes:

* :data:`CONSISTENCY_BOUNDED` — serve the live store.  Freshest possible
  answer; between checkpoints it exposes state an at-least-once job may yet
  replay (and an exactly-once job has not committed), so every response
  reports its staleness bound: 0 records from the primary, the changelog
  lag when served from a standby replica.
* :data:`CONSISTENCY_SNAPSHOT` — serve from a follower replica applied only
  up to the changelog offset recorded at the task's last checkpoint.
  Answers are exactly the durable, committed state a post-crash recovery
  would rebuild — nothing the server returns can later be rolled back.

Every response is a frozen :class:`QueryResult` carrying the answer, who
served it, the consistency mode, the staleness bound, and the simulated
latency (store probe cost + one network hop for the response payload).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.common.errors import ServingError
from repro.common.records import estimate_size
from repro.processing.store import LsmStore
from repro.serving.replica import StandbyReplica

#: Serve the live store; staleness bound reported per response.
CONSISTENCY_BOUNDED = "bounded"
#: Serve the state as of the task's last checkpoint (never rolled back).
CONSISTENCY_SNAPSHOT = "snapshot"
CONSISTENCY_MODES = (CONSISTENCY_BOUNDED, CONSISTENCY_SNAPSHOT)

#: Who answered: the live task store, a warm standby, or the per-server
#: snapshot follower.
SERVED_BY_PRIMARY = "primary"
SERVED_BY_STANDBY = "standby"
SERVED_BY_SNAPSHOT = "snapshot"


@dataclass(frozen=True)
class QueryResult:
    """One serving response: answer + provenance + staleness + cost.

    The same shape answers all three query kinds: ``get`` sets ``key`` and a
    scalar ``value``; ``range`` sets ``key=(start, end)`` and ``value`` to
    the tuple of ``(key, value)`` pairs; ``approximate_count`` sets
    ``value`` to the count.
    """

    key: Any
    value: Any
    found: bool
    store: str
    task_id: int
    served_by: str
    consistency: str
    #: Changelog records the serving copy may be behind the live store
    #: (0 when served from the primary).
    staleness_records: int
    #: Simulated seconds since the serving copy was last known current.
    staleness_seconds: float
    #: Simulated cost of answering: store probe + response network hop.
    latency: float


class StateServer:
    """Answers queries over one task's stores (one shard of the job)."""

    def __init__(self, runner, task_id: int) -> None:
        if not 0 <= task_id < runner.num_tasks:
            raise ServingError(
                f"job {runner.config.name!r} has tasks 0..{runner.num_tasks - 1}, "
                f"not {task_id}"
            )
        self.runner = runner
        self.task_id = task_id
        self.clock = runner.clock
        self.cost_model = runner.cluster.cost_model
        self._store_configs = {sc.name: sc for sc in runner.config.stores}
        #: store name -> follower replica pinned at the checkpoint bound.
        self._snapshot_followers: dict[str, StandbyReplica] = {}
        #: Round-robin cursor over standby sets for stale-tolerant reads.
        self._stale_cursor = 0

    # -- store selection ---------------------------------------------------------

    def _store_config(self, store: str):
        config = self._store_configs.get(store)
        if config is None:
            raise ServingError(
                f"job {self.runner.config.name!r} has no store {store!r}; "
                f"known: {sorted(self._store_configs)}"
            )
        return config

    def _live_store(self, store: str):
        # Re-resolved per query: migrate/recover replace the task instance,
        # and queries must always hit the current incarnation.  Reads go to
        # the raw store, not the KeyValueState wrapper, so serving traffic
        # does not inflate the task's own get counters.
        return self.runner.task(self.task_id).stores[store].store

    def _snapshot_store(self, store: str) -> tuple[Any, int, float]:
        """The snapshot follower's store, advanced to the checkpoint bound.

        Returns ``(store, staleness_records, staleness_seconds)``.
        """
        config = self._store_config(store)
        if not config.changelog:
            raise ServingError(
                f"store {store!r} keeps no changelog; snapshot reads need one"
            )
        bound = self.runner.snapshot_offset(self.task_id, store)
        if bound is None:
            raise ServingError(
                f"no snapshot bound recorded yet for store {store!r} "
                f"task {self.task_id} (changelog leader unreachable?)"
            )
        follower = self._snapshot_followers.get(store)
        if follower is None:
            follower = StandbyReplica(
                self.runner.cluster,
                self.runner.config.name,
                store,
                self.task_id,
                store_type=config.store_type,
                store_options=dict(config.store_options),
                isolation=self.runner.isolation,
                replica_id=-1,  # follower, never promoted
            )
            self._snapshot_followers[store] = follower
        follower.catch_up(limit_offset=bound)
        lag = max(0, self.runner.cluster.end_offset(follower.tp) - bound)
        snapshot_time = self.runner.snapshot_time(self.task_id)
        staleness_seconds = (
            0.0 if snapshot_time is None else max(0.0, self.clock.now() - snapshot_time)
        )
        return follower.store, lag, staleness_seconds

    def standby_staleness(self) -> dict[str, int]:
        """Worst changelog lag per store across this task's standby sets.

        Empty when the task keeps no standbys.  The SLO monitor and the
        cluster health rollup read this to judge how stale a failover or a
        stale-tolerant read would be right now.
        """
        worst: dict[str, int] = {}
        for replicas in self.runner.standby_replicas(self.task_id):
            for store, replica in replicas.items():
                worst[store] = max(worst.get(store, 0), replica.lag())
        return worst

    def _standby_store(self, store: str) -> tuple[Any, int, float] | None:
        """A warm standby's store for stale-tolerant reads, or ``None``."""
        sets = self.runner.standby_replicas(self.task_id)
        if not sets:
            return None
        replicas = sets[self._stale_cursor % len(sets)]
        self._stale_cursor += 1
        replica = replicas.get(store)
        if replica is None:
            return None
        staleness_seconds = max(0.0, self.clock.now() - replica.caught_up_at)
        return replica.store, replica.lag(), staleness_seconds

    def _select(
        self, store: str, consistency: str, allow_stale: bool
    ) -> tuple[Any, str, int, float]:
        """Pick the store copy a query reads: (store, served_by, staleness)."""
        if consistency not in CONSISTENCY_MODES:
            raise ServingError(
                f"consistency must be one of {CONSISTENCY_MODES}, "
                f"got {consistency!r}"
            )
        self._store_config(store)  # validate the name in every mode
        if consistency == CONSISTENCY_SNAPSHOT:
            target, lag, seconds = self._snapshot_store(store)
            return target, SERVED_BY_SNAPSHOT, lag, seconds
        if allow_stale:
            picked = self._standby_store(store)
            if picked is not None:
                target, lag, seconds = picked
                return target, SERVED_BY_STANDBY, lag, seconds
        return self._live_store(store), SERVED_BY_PRIMARY, 0, 0.0

    # -- cost accounting ---------------------------------------------------------

    def _probe_cost(self, target: Any) -> float:
        """Point-probe cost; call right after ``target.get``."""
        if isinstance(target, LsmStore):
            return target.last_op_cost
        return self.cost_model.store_memtable_get

    def _scan_cost(self, target: Any) -> float:
        if isinstance(target, LsmStore):
            return target.scan_cost()
        return self.cost_model.store_memtable_get

    def _response_cost(self, payload: Any) -> float:
        return self.cost_model.network_oneway(estimate_size(payload))

    # -- queries -----------------------------------------------------------------

    def get(
        self,
        store: str,
        key: Any,
        consistency: str = CONSISTENCY_BOUNDED,
        allow_stale: bool = False,
    ) -> QueryResult:
        """Point lookup of ``key`` in ``store``."""
        target, served_by, lag, seconds = self._select(
            store, consistency, allow_stale
        )
        value = target.get(key)
        latency = self._probe_cost(target) + self._response_cost(value)
        return QueryResult(
            key=key,
            value=value,
            found=value is not None,
            store=store,
            task_id=self.task_id,
            served_by=served_by,
            consistency=consistency,
            staleness_records=lag,
            staleness_seconds=seconds,
            latency=latency,
        )

    def range(
        self,
        store: str,
        start: Any = None,
        end: Any = None,
        consistency: str = CONSISTENCY_BOUNDED,
        allow_stale: bool = False,
    ) -> QueryResult:
        """All pairs with ``start <= repr(key) < end``, in key-repr order."""
        target, served_by, lag, seconds = self._select(
            store, consistency, allow_stale
        )
        pairs = tuple(target.range_items(start, end))
        latency = self._scan_cost(target) + self._response_cost(list(pairs))
        return QueryResult(
            key=(start, end),
            value=pairs,
            found=bool(pairs),
            store=store,
            task_id=self.task_id,
            served_by=served_by,
            consistency=consistency,
            staleness_records=lag,
            staleness_seconds=seconds,
            latency=latency,
        )

    def approximate_count(
        self,
        store: str,
        consistency: str = CONSISTENCY_BOUNDED,
        allow_stale: bool = False,
    ) -> QueryResult:
        """Number of live keys in this task's shard of ``store``.

        "Approximate" because the answer is only exact at the staleness
        bound it reports — the live store may have moved on.
        """
        target, served_by, lag, seconds = self._select(
            store, consistency, allow_stale
        )
        count = len(target)
        latency = self._scan_cost(target) + self._response_cost(count)
        return QueryResult(
            key=None,
            value=count,
            found=count > 0,
            store=store,
            task_id=self.task_id,
            served_by=served_by,
            consistency=consistency,
            staleness_records=lag,
            staleness_seconds=seconds,
            latency=latency,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"StateServer({self.runner.config.name!r}, task={self.task_id})"
        )
