"""Query routing over a job's task shards.

A job's state is sharded exactly like its input: task *i* owns partition
*i*, and a keyed record lands on the partition chosen by the producer's
hash partitioner.  :class:`StateQueryRouter` therefore routes a key lookup
with the *same* function — :func:`repro.common.partitioning.partition_for_key`
— so routing agrees byte-for-byte with where the job wrote the key's state.
A query for key *k* goes to the one :class:`~repro.serving.server.StateServer`
whose task could have stored it; ``range`` and ``approximate_count``
scatter-gather across all shards.

The router is the front door the paper's serving story needs: front-ends
issue point lookups against nearline state without consuming changelogs,
with per-response staleness bounds, optional stale-tolerant reads off
standby replicas (load spreading), and ``state.query`` spans + ``serving.*``
metrics for the operational story.
"""

from __future__ import annotations

from typing import Any

from repro.common.errors import ServingError
from repro.common.metrics import metric_name, metric_segment
from repro.common.partitioning import partition_for_key
from repro.observability.trace import current_tracer
from repro.serving.server import (
    CONSISTENCY_BOUNDED,
    QueryResult,
    StateServer,
)


class StateQueryRouter:
    """Routes state queries to the task shard owning each key."""

    def __init__(self, runner) -> None:
        self.runner = runner
        self.clock = runner.clock
        self.servers = [
            StateServer(runner, task_id) for task_id in range(runner.num_tasks)
        ]
        segment = metric_segment(runner.config.name)
        metrics = runner.metrics
        self._c_queries = metrics.counter(
            metric_name("serving", "router", segment, "queries")
        )
        self._c_stale = metrics.counter(
            metric_name("serving", "router", segment, "stale_served")
        )
        self._h_latency = metrics.histogram(
            metric_name("serving", "router", segment, "query_latency")
        )

    def task_for_key(self, key: Any) -> int:
        """The task shard owning ``key`` — same hash as the producer's
        partitioner, so routing can never disagree with placement."""
        return partition_for_key(key, self.runner.num_tasks)

    def server(self, task_id: int) -> StateServer:
        if not 0 <= task_id < len(self.servers):
            raise ServingError(
                f"job {self.runner.config.name!r} has tasks "
                f"0..{len(self.servers) - 1}, not {task_id}"
            )
        return self.servers[task_id]

    # -- bookkeeping shared by all query kinds ------------------------------------

    def _account(self, kind: str, result: QueryResult) -> QueryResult:
        self._c_queries.increment(1)
        if result.served_by != "primary":
            self._c_stale.increment(1)
        self._h_latency.observe(result.latency)
        tracer = current_tracer()
        if tracer is not None:
            start = self.clock.now()
            span = tracer.open_span(
                "state.query",
                None,
                start=start,
                job=self.runner.config.name,
                kind=kind,
                store=result.store,
                task=result.task_id,
                served_by=result.served_by,
                consistency=result.consistency,
                staleness_records=result.staleness_records,
            )
            if span is not None:
                tracer.close(span, end=start + result.latency)
        return result

    # -- queries ------------------------------------------------------------------

    def get(
        self,
        store: str,
        key: Any,
        consistency: str = CONSISTENCY_BOUNDED,
        allow_stale: bool = False,
    ) -> QueryResult:
        """Point lookup, routed to the shard owning ``key``.

        ``allow_stale=True`` lets the owning shard answer from one of its
        standby replicas (round-robin) when the job keeps any — spreading
        read load off the processing container at the cost of the staleness
        the response reports.
        """
        server = self.servers[self.task_for_key(key)]
        return self._account(
            "get", server.get(store, key, consistency, allow_stale)
        )

    def range(
        self,
        store: str,
        start: Any = None,
        end: Any = None,
        consistency: str = CONSISTENCY_BOUNDED,
        allow_stale: bool = False,
    ) -> QueryResult:
        """Scatter-gather range scan over every shard, merged in key order.

        The shards answer in parallel, so the reported latency is the
        slowest shard's; the staleness bound is the worst across shards.
        """
        shards = [
            server.range(store, start, end, consistency, allow_stale)
            for server in self.servers
        ]
        pairs = tuple(
            sorted(
                (pair for shard in shards for pair in shard.value),
                key=lambda kv: repr(kv[0]),
            )
        )
        merged = QueryResult(
            key=(start, end),
            value=pairs,
            found=bool(pairs),
            store=store,
            task_id=-1,  # all shards
            served_by=_worst_served_by(shards),
            consistency=consistency,
            staleness_records=max(s.staleness_records for s in shards),
            staleness_seconds=max(s.staleness_seconds for s in shards),
            latency=max(s.latency for s in shards),
        )
        return self._account("range", merged)

    def approximate_count(
        self,
        store: str,
        consistency: str = CONSISTENCY_BOUNDED,
        allow_stale: bool = False,
    ) -> QueryResult:
        """Total live keys across every shard of ``store``."""
        shards = [
            server.approximate_count(store, consistency, allow_stale)
            for server in self.servers
        ]
        total = sum(s.value for s in shards)
        merged = QueryResult(
            key=None,
            value=total,
            found=total > 0,
            store=store,
            task_id=-1,
            served_by=_worst_served_by(shards),
            consistency=consistency,
            staleness_records=max(s.staleness_records for s in shards),
            staleness_seconds=max(s.staleness_seconds for s in shards),
            latency=max(s.latency for s in shards),
        )
        return self._account("approximate_count", merged)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"StateQueryRouter({self.runner.config.name!r}, "
            f"shards={len(self.servers)})"
        )


def _worst_served_by(shards: list[QueryResult]) -> str:
    """Provenance of a merged answer: primary only if *every* shard was."""
    for shard in shards:
        if shard.served_by != "primary":
            return shard.served_by
    return "primary"
