"""Failpoints: named fault-injection hooks compiled out when disarmed.

A *failpoint* is a named call site threaded through a hot path::

    from repro.chaos.failpoints import failpoint

    def produce(self, ...):
        failpoint("broker.produce", broker=self.broker_id)
        ...

When nothing is armed — the permanent state of library code — the hook is a
single module-global truthiness check and returns ``None``; the hot paths
pay essentially nothing (see the fast path in :func:`failpoint`).  Tests and
the :class:`~repro.chaos.schedule.ChaosSchedule` *arm* a failpoint with an
action that fires at the call site: raising a transient error, telling the
caller to skip its work (:data:`SKIP`), or recording the hit.

Arming is always bounded and reversible: ``times=N`` disarms automatically
after N fires, probability gates use an injected RNG (never the global
``random`` state — determinism is the whole point), and
:meth:`FailpointRegistry.scoped` restores the disarmed state on exit.  The
``repro.tools.lint_failpoints`` checker asserts no library module arms a
failpoint at import time.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from typing import Any, Callable, Iterator

from repro.common.errors import ConfigError


class _Skip:
    """Sentinel telling the call site to skip the guarded work."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<chaos.SKIP>"


#: Returned by an armed action (via :func:`skipping`) to make the caller
#: skip the guarded operation — e.g. a replication pass that stalls.
SKIP = _Skip()


def raising(exc_factory: Callable[[], BaseException]) -> Callable[..., Any]:
    """Action that raises a fresh exception on every fire."""

    def action(**ctx: Any) -> Any:
        raise exc_factory()

    return action


def skipping(**_ctx: Any) -> Any:
    """Action that returns :data:`SKIP`, telling the caller to do nothing."""
    return SKIP


class _Armed:
    """One armed failpoint: action + firing budget + probability gate."""

    __slots__ = ("name", "action", "remaining", "probability", "rng")

    def __init__(
        self,
        name: str,
        action: Callable[..., Any] | None,
        remaining: int | None,
        probability: float,
        rng: random.Random | None,
    ) -> None:
        self.name = name
        self.action = action
        self.remaining = remaining
        self.probability = probability
        self.rng = rng


class FailpointRegistry:
    """Holds armed failpoints and dispatches hits from call sites.

    The registry itself is cheap to consult — :func:`failpoint` only calls
    :meth:`hit` when at least one failpoint is armed anywhere.
    """

    def __init__(self) -> None:
        self._armed: dict[str, _Armed] = {}
        self._fires: dict[str, int] = {}

    # -- arming ----------------------------------------------------------------

    def arm(
        self,
        name: str,
        action: Callable[..., Any] | None = None,
        *,
        times: int | None = None,
        probability: float = 1.0,
        rng: random.Random | None = None,
    ) -> None:
        """Arm ``name``.  ``action(**ctx)`` runs on each fire (may raise).

        ``times`` bounds the number of fires (auto-disarm after); it must be
        given as a positive count.  ``probability`` < 1 requires an explicit
        ``rng`` so injection stays seed-deterministic.
        """
        if times is not None and times <= 0:
            raise ConfigError(f"times must be > 0, got {times}")
        if not 0.0 < probability <= 1.0:
            raise ConfigError(f"probability must be in (0, 1], got {probability}")
        if probability < 1.0 and rng is None:
            raise ConfigError(
                "probabilistic failpoints require an explicit rng "
                "(global random state would break replayability)"
            )
        self._armed[name] = _Armed(name, action, times, probability, rng)

    def disarm(self, name: str) -> bool:
        """Disarm ``name``; returns whether it was armed.  Idempotent."""
        return self._armed.pop(name, None) is not None

    def disarm_all(self) -> None:
        self._armed.clear()

    @contextmanager
    def scoped(
        self,
        name: str,
        action: Callable[..., Any] | None = None,
        *,
        times: int | None = None,
        probability: float = 1.0,
        rng: random.Random | None = None,
    ) -> Iterator[None]:
        """Arm ``name`` for the duration of a ``with`` block."""
        self.arm(name, action, times=times, probability=probability, rng=rng)
        try:
            yield
        finally:
            self.disarm(name)

    # -- dispatch --------------------------------------------------------------

    def hit(self, name: str, ctx: dict[str, Any]) -> Any:
        """Evaluate a call-site hit; returns the action's result (or None)."""
        armed = self._armed.get(name)
        if armed is None:
            return None
        if armed.probability < 1.0:
            assert armed.rng is not None  # enforced by arm()
            if armed.rng.random() >= armed.probability:
                return None
        if armed.remaining is not None:
            armed.remaining -= 1
            if armed.remaining == 0:
                del self._armed[name]
        self._fires[name] = self._fires.get(name, 0) + 1
        if armed.action is None:
            return None
        return armed.action(name=name, **ctx)

    # -- introspection ---------------------------------------------------------

    def is_armed(self, name: str) -> bool:
        return name in self._armed

    def armed_names(self) -> set[str]:
        return set(self._armed)

    def fires(self, name: str) -> int:
        """How many times ``name`` actually fired (passed its gates)."""
        return self._fires.get(name, 0)

    def reset_counters(self) -> None:
        self._fires.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FailpointRegistry(armed={sorted(self._armed)})"


#: Process-wide registry consulted by every :func:`failpoint` call site.
_REGISTRY = FailpointRegistry()


def registry() -> FailpointRegistry:
    """The process-wide failpoint registry."""
    return _REGISTRY


def failpoint(name: str, **ctx: Any) -> Any:
    """Fault-injection hook for hot paths.

    Disarmed (the default, and the permanent state in production code) this
    is one dict-truthiness check.  Armed, it dispatches to the registry: the
    armed action may raise into the caller, return :data:`SKIP`, or just
    count the hit.
    """
    if not _REGISTRY._armed:
        return None
    return _REGISTRY.hit(name, ctx)
