"""Chaos-run invariants: what must hold no matter what the schedule did.

A :class:`ChaosReport` observes a client workload (acks, commits, errors)
while a :class:`~repro.chaos.schedule.ChaosSchedule` runs, then audits the
healed cluster:

* **No acked record lost** — every record the producer was acknowledged for
  is still readable at its acked offset with its acked value (offsets that
  retention legitimately reclaimed are exempt: deletion by policy is not
  data loss).
* **No committed offset regression** — per (group, partition), offsets
  committed to the offset manager never move backwards.
* **Idempotent dedup holds** — no two distinct (non-duplicate) acks cover
  the same offset, and no acked value appears at two different offsets.

Violations are collected as strings so a soak failure names every broken
invariant at once instead of stopping at the first.
"""

from __future__ import annotations

from typing import Any

from repro.common.records import TopicPartition


class ChaosReport:
    """Collects workload observations and audits invariants after a run."""

    def __init__(self) -> None:
        #: (tp, offset) -> acked value, for every non-duplicate acked record.
        self._acked: dict[tuple[TopicPartition, int], Any] = {}
        self._committed: dict[tuple[str, TopicPartition], int] = {}
        self.acked_batches = 0
        self.duplicate_acks = 0
        self.client_errors: dict[str, int] = {}
        self.violations: list[str] = []

    # -- observation hooks (call during the run) --------------------------------

    def note_ack(self, tp: TopicPartition, ack: Any, values: list[Any]) -> None:
        """Record an acknowledged batch: ``values`` sent, ``ack`` returned."""
        self.acked_batches += 1
        if getattr(ack, "duplicate", False):
            # A dedup hit re-acks offsets recorded by the original append.
            self.duplicate_acks += 1
            return
        offsets = range(ack.base_offset, ack.last_offset + 1)
        if len(offsets) != len(values):
            self.violations.append(
                f"ack shape mismatch on {tp}: {len(values)} values acked as "
                f"offsets [{ack.base_offset}, {ack.last_offset}]"
            )
        for offset, value in zip(offsets, values):
            previous = self._acked.get((tp, offset))
            if previous is not None and previous != value:
                self.violations.append(
                    f"idempotent dedup violated: {tp}@{offset} acked twice "
                    f"with different values ({previous!r} then {value!r})"
                )
            self._acked[(tp, offset)] = value

    def note_commit(self, group: str, tp: TopicPartition, offset: int) -> None:
        """Record an offset commit; regressions are flagged immediately."""
        last = self._committed.get((group, tp))
        if last is not None and offset < last:
            self.violations.append(
                f"committed offset regression for {group} on {tp}: "
                f"{last} -> {offset}"
            )
        self._committed[(group, tp)] = offset

    def note_error(self, context: str, exc: BaseException) -> None:
        """Count a tolerated client error (retried/re-buffered, not lost)."""
        key = f"{context}:{type(exc).__name__}"
        self.client_errors[key] = self.client_errors.get(key, 0) + 1

    # -- audit (call after healing the cluster) ---------------------------------

    def verify(self, cluster: Any) -> list[str]:
        """Audit the cluster against everything acked/committed; returns all
        violations (already-noted ones included)."""
        violations = list(self.violations)
        by_tp: dict[TopicPartition, list[tuple[int, Any]]] = {}
        for (tp, offset), value in self._acked.items():
            by_tp.setdefault(tp, []).append((offset, value))
        for tp, acked in sorted(by_tp.items(), key=lambda kv: str(kv[0])):
            start = cluster.beginning_offset(tp)
            end = cluster.end_offset(tp)
            stored: dict[int, Any] = {}
            offset = start
            while offset < end:
                result = cluster.fetch(tp.topic, tp.partition, offset, 1000)
                for record in result.records:
                    stored[record.offset] = record.value
                if result.next_offset <= offset:
                    break
                offset = result.next_offset
            acked_values: dict[Any, int] = {}
            for offset, value in sorted(acked):
                if offset < start:
                    continue  # reclaimed by retention, by policy
                if offset >= end:
                    violations.append(
                        f"acked record lost: {tp}@{offset} ({value!r}) is "
                        f"beyond the high watermark {end}"
                    )
                    continue
                if offset not in stored:
                    violations.append(
                        f"acked record lost: {tp}@{offset} ({value!r}) not "
                        f"readable in [{start}, {end})"
                    )
                elif stored[offset] != value:
                    violations.append(
                        f"acked record corrupted: {tp}@{offset} holds "
                        f"{stored[offset]!r}, acked {value!r}"
                    )
                try:
                    acked_values[value] = acked_values.get(value, 0) + 1
                except TypeError:
                    continue  # unhashable payloads skip the dedup scan
            occurrences: dict[Any, int] = {}
            for value in stored.values():
                try:
                    occurrences[value] = occurrences.get(value, 0) + 1
                except TypeError:
                    continue
            for value, acked_count in acked_values.items():
                if acked_count == 1 and occurrences.get(value, 0) > 1:
                    violations.append(
                        f"idempotent dedup violated: value {value!r} acked "
                        f"once but stored {occurrences[value]} times on {tp}"
                    )
        return violations

    def assert_invariants(self, cluster: Any) -> None:
        """Raise ``AssertionError`` naming every violated invariant."""
        violations = self.verify(cluster)
        if violations:
            raise AssertionError(
                f"{len(violations)} chaos invariant violation(s):\n"
                + "\n".join(f"  - {v}" for v in violations)
            )

    def summary(self) -> dict[str, Any]:
        """Run statistics for logging/EXPERIMENTS entries."""
        return {
            "acked_batches": self.acked_batches,
            "acked_records": len(self._acked),
            "duplicate_acks": self.duplicate_acks,
            "commits": len(self._committed),
            "tolerated_errors": dict(sorted(self.client_errors.items())),
            "violations": len(self.violations),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ChaosReport(acked={len(self._acked)}, "
            f"violations={len(self.violations)})"
        )
