"""Deterministic fault injection for the Liquid reproduction.

Three pieces, layered:

* :mod:`repro.chaos.failpoints` — named hooks threaded through the storage,
  messaging and processing hot paths; no-ops unless armed.
* :mod:`repro.chaos.schedule` — a seed-reproducible timeline of broker
  crashes, leadership churn, replication stalls, transient client errors and
  retention sweeps, applied through the ``SimClock`` and the failpoints.
* :mod:`repro.chaos.report` — the invariants every run must uphold: no
  acked record lost, no committed offset regression, idempotent dedup holds.

See ``examples/chaos_day.py`` for the end-to-end walkthrough and
``tests/integration/test_chaos_soak.py`` for the seeded soak.
"""

from repro.chaos.failpoints import (
    SKIP,
    FailpointRegistry,
    failpoint,
    raising,
    registry,
    skipping,
)
from repro.chaos.report import ChaosReport
from repro.chaos.schedule import ChaosConfig, ChaosEvent, ChaosSchedule

__all__ = [
    "SKIP",
    "ChaosConfig",
    "ChaosEvent",
    "ChaosReport",
    "ChaosSchedule",
    "FailpointRegistry",
    "failpoint",
    "raising",
    "registry",
    "skipping",
]
