"""Seed-deterministic chaos schedules over a messaging cluster.

A :class:`ChaosSchedule` turns one RNG seed into a timeline of the failures
a 300-broker deployment sees daily (§4.3, §5): broker crashes and restarts
(clean — the session expires immediately — and unclean, where the machine
freezes first and the coordinator only notices later), leadership churn,
replication stalls, transient produce/fetch errors, and retention sweeps
racing consumers.

Every random draw happens at :meth:`install` time, from a private
``random.Random(seed)`` — nothing consults global RNG state or the wall
clock — so the *plan* is a pure function of the seed, and with a
deterministic workload the fired *trace* replays byte-for-byte.  Faults are
applied through the :class:`~repro.common.clock.SimClock` (crashes,
restarts, sweeps) and the failpoint registry (stalls, transient client
errors), and every fired event is appended to the trace.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.common.errors import (
    BrokerUnavailableError,
    ConfigError,
    NotLeaderForPartitionError,
)
from repro.chaos.failpoints import FailpointRegistry, raising, registry, skipping


@dataclass(frozen=True)
class ChaosEvent:
    """One planned fault: what fires, when, against which target."""

    at: float
    kind: str
    detail: str

    def __str__(self) -> str:
        return f"{self.at:.3f} {self.kind} {self.detail}"


@dataclass(frozen=True)
class ChaosConfig:
    """Shape of the fault mix; all durations in simulated seconds."""

    horizon: float = 40.0
    min_interval: float = 1.0
    max_interval: float = 3.0
    #: (kind, weight) pairs; weight 0 disables a fault kind.
    weights: tuple[tuple[str, float], ...] = (
        ("crash", 2.0),
        ("unclean_crash", 1.0),
        ("leader_churn", 2.0),
        ("replication_stall", 2.0),
        ("produce_errors", 2.0),
        ("fetch_errors", 2.0),
        ("retention_sweep", 1.0),
    )
    restart_delay: tuple[float, float] = (1.0, 4.0)
    session_expiry_delay: tuple[float, float] = (0.5, 2.0)
    stall_duration: tuple[float, float] = (0.5, 2.5)
    error_burst: tuple[int, int] = (1, 4)
    #: Never crash below this many online brokers (keeps quorums electable).
    min_online_brokers: int = 2

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ConfigError("horizon must be > 0")
        if not 0 < self.min_interval <= self.max_interval:
            raise ConfigError("need 0 < min_interval <= max_interval")
        if self.min_online_brokers < 1:
            raise ConfigError("min_online_brokers must be >= 1")
        known = {kind for kind, _ in self.weights}
        unknown = known - set(_FAULT_KINDS)
        if unknown:
            raise ConfigError(f"unknown fault kinds: {sorted(unknown)}")


_FAULT_KINDS = (
    "crash",
    "unclean_crash",
    "leader_churn",
    "replication_stall",
    "produce_errors",
    "fetch_errors",
    "retention_sweep",
)


class ChaosSchedule:
    """Plans and applies a seeded fault timeline against one cluster.

    ``topics`` scopes leadership churn; other faults hit the whole cluster.
    Call :meth:`install` once (after creating the topics) to draw the plan
    from the seed and register every fault on the cluster's clock; drive the
    simulation with ``cluster.tick`` as usual, then read :meth:`trace`.
    """

    def __init__(
        self,
        cluster: Any,
        seed: int,
        topics: list[str] | None = None,
        config: ChaosConfig | None = None,
        failpoints: FailpointRegistry | None = None,
    ) -> None:
        self.cluster = cluster
        self.seed = seed
        self.config = config if config is not None else ChaosConfig()
        self.failpoints = failpoints if failpoints is not None else registry()
        self._topics = topics
        self._plan: list[ChaosEvent] = []
        self._trace: list[tuple[float, str]] = []
        self._installed = False
        # Fire-time probability gates draw from a dedicated stream so call
        # order inside a tick cannot perturb the plan stream.
        self._gate_rng = random.Random((seed << 1) ^ 0x5EED)

    # -- planning ----------------------------------------------------------------

    def install(self) -> list[ChaosEvent]:
        """Draw the fault plan from the seed and schedule it on the clock."""
        if self._installed:
            raise ConfigError("chaos schedule already installed")
        self._installed = True
        rng = random.Random(self.seed)
        cfg = self.config
        topics = self._topics
        if topics is None:
            topics = [t for t in self.cluster.topics() if not t.startswith("__")]
        broker_ids = sorted(b.broker_id for b in self.cluster.brokers())
        partitions = [
            (topic, tp.partition)
            for topic in sorted(topics)
            for tp in self.cluster.partitions_of(topic)
        ]
        kinds = [kind for kind, weight in cfg.weights if weight > 0]
        weights = [weight for _, weight in cfg.weights if weight > 0]
        now = self.cluster.clock.now()
        t = now
        while True:
            t += rng.uniform(cfg.min_interval, cfg.max_interval)
            if t >= now + cfg.horizon:
                break
            kind = rng.choices(kinds, weights)[0]
            if kind == "crash":
                broker_id = rng.choice(broker_ids)
                back = t + rng.uniform(*cfg.restart_delay)
                self._add(t, "crash", f"broker={broker_id}",
                          self._fire_crash, broker_id)
                self._add(back, "restart", f"broker={broker_id}",
                          self._fire_restart, broker_id)
            elif kind == "unclean_crash":
                broker_id = rng.choice(broker_ids)
                expiry = t + rng.uniform(*cfg.session_expiry_delay)
                back = expiry + rng.uniform(*cfg.restart_delay)
                self._add(t, "unclean_crash", f"broker={broker_id}",
                          self._fire_unclean_crash, broker_id)
                self._add(expiry, "session_expiry", f"broker={broker_id}",
                          self._fire_session_expiry, broker_id)
                self._add(back, "restart", f"broker={broker_id}",
                          self._fire_restart, broker_id)
            elif kind == "leader_churn":
                if not partitions:
                    continue
                topic, partition = rng.choice(partitions)
                back = t + rng.uniform(*cfg.restart_delay)
                self._add(t, "leader_churn", f"{topic}-{partition}",
                          self._fire_leader_churn, topic, partition, back)
            elif kind == "replication_stall":
                duration = rng.uniform(*cfg.stall_duration)
                self._add(t, "replication_stall", f"for={duration:.3f}",
                          self._fire_stall_start)
                self._add(t + duration, "replication_heal", "",
                          self._fire_stall_end)
            elif kind == "produce_errors":
                burst = rng.randint(*cfg.error_burst)
                self._add(t, "produce_errors", f"times={burst}",
                          self._fire_produce_errors, burst)
            elif kind == "fetch_errors":
                burst = rng.randint(*cfg.error_burst)
                self._add(t, "fetch_errors", f"times={burst}",
                          self._fire_fetch_errors, burst)
            elif kind == "retention_sweep":
                self._add(t, "retention_sweep", "",
                          self._fire_retention_sweep)
        self._plan.sort(key=lambda e: e.at)
        return self.plan()

    def _add(
        self, at: float, kind: str, detail: str, fire: Any, *args: Any
    ) -> None:
        event = ChaosEvent(at, kind, detail)
        self._plan.append(event)
        self.cluster.clock.schedule_at(at, self._fire, event, fire, args)

    # -- firing ------------------------------------------------------------------

    def _fire(self, event: ChaosEvent, fire: Any, args: tuple[Any, ...]) -> None:
        outcome = fire(*args)
        label = f"{event.kind} {event.detail}".rstrip()
        if outcome:
            label = f"{label} [{outcome}]"
        self._trace.append((self.cluster.clock.now(), label))

    def _online_brokers(self) -> int:
        return sum(1 for b in self.cluster.brokers() if b.online)

    def _fire_crash(self, broker_id: int) -> str:
        broker = self.cluster.broker(broker_id)
        if not broker.online:
            return "skipped: already offline"
        if self._online_brokers() <= self.config.min_online_brokers:
            return "skipped: min-online"
        self.cluster.kill_broker(broker_id)
        return ""

    def _fire_unclean_crash(self, broker_id: int) -> str:
        broker = self.cluster.broker(broker_id)
        if not broker.online:
            return "skipped: already offline"
        if self._online_brokers() <= self.config.min_online_brokers:
            return "skipped: min-online"
        # The machine freezes: no session expiry yet, the controller still
        # believes the broker is in its ISRs.  This is the window where the
        # acks=all path must shrink the ISR itself (see cluster.py).
        broker.shutdown()
        return ""

    def _fire_session_expiry(self, broker_id: int) -> str:
        broker = self.cluster.broker(broker_id)
        if broker.online:
            return "skipped: broker online"
        if broker_id not in self.cluster.controller.live_brokers():
            return "skipped: already expired"
        self.cluster.controller.broker_failed(broker_id)
        return ""

    def _fire_restart(self, broker_id: int) -> str:
        broker = self.cluster.broker(broker_id)
        if broker.online:
            return "skipped: already online"
        if broker_id in self.cluster.controller.live_brokers():
            # Unclean crash whose session never expired: expire it first so
            # the restart goes through the normal recovery path.
            self.cluster.controller.broker_failed(broker_id)
        self.cluster.restart_broker(broker_id)
        return ""

    def _fire_leader_churn(self, topic: str, partition: int, back: float) -> str:
        leader = self.cluster.leader_of(topic, partition)
        if leader is None:
            return "skipped: offline partition"
        if self._online_brokers() <= self.config.min_online_brokers:
            return "skipped: min-online"
        self.cluster.kill_broker(leader)
        self.cluster.clock.schedule_at(
            back,
            self._fire,
            ChaosEvent(back, "restart", f"broker={leader}"),
            self._fire_restart,
            (leader,),
        )
        return f"killed leader {leader}"

    def _fire_stall_start(self) -> str:
        self.failpoints.arm("replication.sync", skipping)
        return ""

    def _fire_stall_end(self) -> str:
        self.failpoints.disarm("replication.sync")
        return ""

    def _fire_produce_errors(self, burst: int) -> str:
        self.failpoints.arm(
            "cluster.produce",
            raising(lambda: BrokerUnavailableError("chaos: produce dropped")),
            times=burst,
            probability=0.5,
            rng=self._gate_rng,
        )
        return ""

    def _fire_fetch_errors(self, burst: int) -> str:
        self.failpoints.arm(
            "cluster.fetch",
            raising(lambda: NotLeaderForPartitionError("chaos: stale metadata")),
            times=burst,
            probability=0.5,
            rng=self._gate_rng,
        )
        return ""

    def _fire_retention_sweep(self) -> str:
        swept = 0
        for broker in self.cluster.brokers():
            if broker.online:
                swept += broker.run_retention()
        return f"deleted {swept}"

    # -- teardown / introspection --------------------------------------------------

    def heal(self) -> None:
        """Disarm chaos failpoints and bring every broker back online.

        Call after the horizon to let invariant checks run against a healthy
        cluster; pending planned events still fire if time advances further.
        """
        for name in ("replication.sync", "cluster.produce", "cluster.fetch"):
            self.failpoints.disarm(name)
        for broker in self.cluster.brokers():
            if not broker.online:
                if broker.broker_id in self.cluster.controller.live_brokers():
                    self.cluster.controller.broker_failed(broker.broker_id)
                self.cluster.restart_broker(broker.broker_id)

    def plan(self) -> list[str]:
        """The seed-deterministic fault plan (before any cluster feedback)."""
        return [str(event) for event in self._plan]

    def trace(self) -> list[str]:
        """Fired events with outcomes; byte-for-byte replayable per seed."""
        return [f"{at:.3f} {label}" for at, label in self._trace]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ChaosSchedule(seed={self.seed}, planned={len(self._plan)}, "
            f"fired={len(self._trace)})"
        )
