"""State recovery from changelogs (§3.2, §4.1).

"After failure, state is reconstructed from the changelog."  Recovery time
is proportional to the changelog's *retained* size, which is why compaction
matters: a compacted changelog replays one record per live key instead of
one per historical update (E4 measures the difference).

Two restore paths feed the same :class:`RecoveryReport`:

* **cold restore** — replay the store's compacted changelog from its
  earliest offset (``source="changelog"``);
* **standby promotion** — adopt a warm replica's store and replay only the
  changelog *tail* published since it last caught up
  (``source="standby"``; see :mod:`repro.serving.replica`).  Jobs opt in
  with ``JobConfig.num_standby_replicas``; promotion failures (chaos
  failpoints, changelog leader offline) fall back to the cold path, so
  recovery never gets *worse* for having standbys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common.errors import MessagingError
from repro.common.records import TopicPartition
from repro.processing.state import changelog_topic_name

#: How a store's bytes got back into memory.
SOURCE_CHANGELOG = "changelog"
SOURCE_STANDBY = "standby"


@dataclass(frozen=True)
class RestoredStore:
    """One store of one task, as one restore saw it."""

    store: str
    task_id: int
    records_replayed: int
    simulated_seconds: float
    #: ``"changelog"`` (cold replay from the beginning) or ``"standby"``
    #: (warm replica promoted; only the catch-up tail was replayed).
    source: str = SOURCE_CHANGELOG
    #: Offsets skipped because retention deleted them mid-restore (standby
    #: reseat; always 0 on the cold path, which starts at the surviving head).
    records_skipped: int = 0

    @property
    def label(self) -> str:
        return f"{self.store}[{self.task_id}]"


@dataclass
class RecoveryReport:
    """What a restore replayed, from where, and how long it (simulatedly) took."""

    records_replayed: int = 0
    simulated_seconds: float = 0.0
    stores_restored: int = 0
    #: One :class:`RestoredStore` per (store, task) the restore touched, in
    #: restore order — the actionable detail ``per_store`` used to flatten away.
    entries: list[RestoredStore] = field(default_factory=list)

    @property
    def per_store(self) -> dict[str, int]:
        """Back-compat view: ``"store[task]" -> records_replayed``."""
        return {entry.label: entry.records_replayed for entry in self.entries}

    def standby_promotions(self) -> int:
        """How many stores came back via standby promotion."""
        return sum(1 for entry in self.entries if entry.source == SOURCE_STANDBY)

    def add(self, entry: RestoredStore) -> None:
        self.entries.append(entry)
        self.records_replayed += entry.records_replayed
        self.simulated_seconds += entry.simulated_seconds
        self.stores_restored += 1

    def merge(self, other: "RecoveryReport") -> None:
        for entry in other.entries:
            self.add(entry)


def restore_state(
    cluster,
    job_name: str,
    store_name: str,
    task_id: int,
    state,
    batch: int = 500,
    isolation: str = "read_uncommitted",
) -> RecoveryReport:
    """Rebuild one task's store by replaying its changelog partition.

    Exactly-once jobs restore with ``read_committed``: their changelog
    writes are transactional, so entries of an aborted (crashed) transaction
    must not resurrect into the rebuilt store.
    """
    report = RecoveryReport()
    topic = changelog_topic_name(job_name, store_name)
    tp = TopicPartition(topic, task_id)
    # Let follower replication advance the high watermark so every published
    # changelog record is visible to the restore read.
    cluster.tick(0.0)
    offset = cluster.beginning_offset(tp)
    end = cluster.end_offset(tp)
    state.clear()
    records = 0
    seconds = 0.0
    while offset < end:
        result = cluster.fetch(topic, task_id, offset, batch, isolation=isolation)
        seconds += result.latency
        for record in result.records:
            state.restore_entry(record.key, record.value)
            records += 1
        if result.next_offset <= offset:
            break
        offset = result.next_offset
    report.add(
        RestoredStore(store_name, task_id, records, seconds, SOURCE_CHANGELOG)
    )
    return report


def _promote_standbys(runner, task_id: int) -> RecoveryReport | None:
    """Try the warm path: adopt promoted standby stores for one task.

    Returns ``None`` when the runner keeps no standbys for the task or the
    promotion failed (consumed standby; the caller cold-restores instead).
    """
    promote = getattr(runner, "promote_standby", None)
    if promote is None:
        return None
    try:
        promoted = promote(task_id)
    except MessagingError:
        # Chaos or a dead changelog leader mid-promotion: the standby set
        # was consumed, fall back to a cold replay of the full changelog.
        promoted = None
    if promoted is None:
        return None
    report = RecoveryReport()
    instance = runner.task(task_id)
    for store_name, (store, stats) in promoted.items():
        # The new incarnation adopts the replica's store object outright;
        # the KeyValueState wrapper (and its changelog write-through
        # closure) already points at the right partition.
        instance.stores[store_name].store = store
        report.add(
            RestoredStore(
                store_name,
                task_id,
                stats.records_applied,
                stats.simulated_seconds,
                SOURCE_STANDBY,
                records_skipped=stats.records_skipped,
            )
        )
    return report


def restore_task_state(runner, task_id: int) -> RecoveryReport:
    """Rebuild every changelogged store of one task of a job.

    This is the unit of work for both whole-job recovery and the elastic
    controller's container migration: a task landing on a new container
    replays exactly its own changelog partitions, nothing more.  When the
    runner keeps standby replicas, promotion replaces the full replay with
    a catch-up tail.
    """
    promoted = _promote_standbys(runner, task_id)
    if promoted is not None:
        return promoted
    total = RecoveryReport()
    instance = runner.task(task_id)
    for store_config in runner.config.stores:
        if not store_config.changelog:
            continue
        total.merge(
            restore_state(
                runner.cluster,
                runner.config.name,
                store_config.name,
                task_id,
                instance.stores[store_config.name],
                isolation=getattr(runner, "isolation", "read_uncommitted"),
            )
        )
    return total


def restore_job_state(runner) -> RecoveryReport:
    """Rebuild every changelogged store of every task of a job.

    Tasks with standbys promote first (each pays only its catch-up tail);
    the rest cold-restore store-major (all tasks of store A, then store B)
    so the page cache sees the same access sequence as always — the
    restore's simulated cost must not depend on how the report is assembled.
    """
    total = RecoveryReport()
    cold: list[Any] = []
    for instance in runner.tasks():
        promoted = _promote_standbys(runner, instance.task_id)
        if promoted is None:
            cold.append(instance)
        else:
            total.merge(promoted)
    for store_config in runner.config.stores:
        if not store_config.changelog:
            continue
        for instance in cold:
            total.merge(
                restore_state(
                    runner.cluster,
                    runner.config.name,
                    store_config.name,
                    instance.task_id,
                    instance.stores[store_config.name],
                    isolation=getattr(runner, "isolation", "read_uncommitted"),
                )
            )
    return total
