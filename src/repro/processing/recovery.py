"""State recovery from changelogs (§3.2, §4.1).

"After failure, state is reconstructed from the changelog."  Recovery time
is proportional to the changelog's *retained* size, which is why compaction
matters: a compacted changelog replays one record per live key instead of
one per historical update (E4 measures the difference).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.records import TopicPartition
from repro.processing.state import changelog_topic_name


@dataclass
class RecoveryReport:
    """What a changelog restore replayed and how long it (simulatedly) took."""

    records_replayed: int = 0
    simulated_seconds: float = 0.0
    stores_restored: int = 0
    per_store: dict[str, int] = field(default_factory=dict)


def restore_state(
    cluster,
    job_name: str,
    store_name: str,
    task_id: int,
    state,
    batch: int = 500,
    isolation: str = "read_uncommitted",
) -> RecoveryReport:
    """Rebuild one task's store by replaying its changelog partition.

    Exactly-once jobs restore with ``read_committed``: their changelog
    writes are transactional, so entries of an aborted (crashed) transaction
    must not resurrect into the rebuilt store.
    """
    report = RecoveryReport()
    topic = changelog_topic_name(job_name, store_name)
    tp = TopicPartition(topic, task_id)
    # Let follower replication advance the high watermark so every published
    # changelog record is visible to the restore read.
    cluster.tick(0.0)
    offset = cluster.beginning_offset(tp)
    end = cluster.end_offset(tp)
    state.clear()
    while offset < end:
        result = cluster.fetch(topic, task_id, offset, batch, isolation=isolation)
        report.simulated_seconds += result.latency
        for record in result.records:
            state.restore_entry(record.key, record.value)
            report.records_replayed += 1
        if result.next_offset <= offset:
            break
        offset = result.next_offset
    report.stores_restored = 1
    report.per_store[f"{store_name}[{task_id}]"] = report.records_replayed
    return report


def restore_task_state(runner, task_id: int) -> RecoveryReport:
    """Rebuild every changelogged store of one task of a job.

    This is the unit of work for both whole-job recovery and the elastic
    controller's container migration: a task landing on a new container
    replays exactly its own changelog partitions, nothing more.
    """
    total = RecoveryReport()
    instance = runner.task(task_id)
    for store_config in runner.config.stores:
        if not store_config.changelog:
            continue
        report = restore_state(
            runner.cluster,
            runner.config.name,
            store_config.name,
            task_id,
            instance.stores[store_config.name],
            isolation=getattr(runner, "isolation", "read_uncommitted"),
        )
        total.records_replayed += report.records_replayed
        total.simulated_seconds += report.simulated_seconds
        total.stores_restored += report.stores_restored
        total.per_store.update(report.per_store)
    return total


def restore_job_state(runner) -> RecoveryReport:
    """Rebuild every changelogged store of every task of a job.

    Iterates store-major (all tasks of store A, then store B) so the page
    cache sees the same access sequence as always — the restore's simulated
    cost must not depend on how the report is assembled.
    """
    total = RecoveryReport()
    for store_config in runner.config.stores:
        if not store_config.changelog:
            continue
        for instance in runner.tasks():
            report = restore_state(
                runner.cluster,
                runner.config.name,
                store_config.name,
                instance.task_id,
                instance.stores[store_config.name],
                isolation=getattr(runner, "isolation", "read_uncommitted"),
            )
            total.records_replayed += report.records_replayed
            total.simulated_seconds += report.simulated_seconds
            total.stores_restored += report.stores_restored
            total.per_store.update(report.per_store)
    return total
