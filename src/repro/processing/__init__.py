"""Processing layer: a Samza-like stateful stream-processing runtime."""

from repro.processing.checkpoint import CheckpointManager, job_group_name
from repro.processing.containers import IsolatedHost, QuantumReport, ResourceQuota
from repro.processing.dataflow import Dataflow
from repro.processing.job import JobConfig, JobRunner, PollResult, StoreConfig
from repro.processing.recovery import (
    RecoveryReport,
    RestoredStore,
    restore_job_state,
    restore_state,
)
from repro.processing.state import KeyValueState, changelog_topic_name
from repro.processing.store import InMemoryStore, KeyValueStore, LsmStore, make_store
from repro.processing.task import (
    Emit,
    MessageCollector,
    StreamTask,
    TaskContext,
)
from repro.processing.windows import (
    SessionWindow,
    SlidingWindow,
    TumblingWindow,
    WindowResult,
)

__all__ = [
    "JobConfig",
    "JobRunner",
    "PollResult",
    "StoreConfig",
    "Dataflow",
    "CheckpointManager",
    "job_group_name",
    "KeyValueState",
    "changelog_topic_name",
    "InMemoryStore",
    "LsmStore",
    "KeyValueStore",
    "make_store",
    "StreamTask",
    "TaskContext",
    "MessageCollector",
    "Emit",
    "RecoveryReport",
    "RestoredStore",
    "restore_state",
    "restore_job_state",
    "IsolatedHost",
    "ResourceQuota",
    "QuantumReport",
    "TumblingWindow",
    "SlidingWindow",
    "SessionWindow",
    "WindowResult",
]
