"""Task checkpointing through the offset manager (§4.2).

"A job can periodically checkpoint the offsets that it has consumed and
maintain a summary of the input data as its state.  When new input data
becomes available, the job can thus ignore already processed data."

Checkpoints are offset commits under the job's group name, annotated with
the job's software version — the metadata the paper's data-cleaning use case
needs to rewind to "the last data cleaned with algorithm v1" when v2 ships.
"""

from __future__ import annotations

from typing import Any

from repro.common.records import TopicPartition
from repro.messaging.offset_manager import OffsetCommit, OffsetManager


#: Checkpoint-metadata key under which the job runner stamps the changelog
#: end offsets the checkpoint covers ({store_name: offset}).  A restarted
#: runner seeds its snapshot-consistency bound from this durable record; see
#: :mod:`repro.serving` for the read path that serves at that bound.
CHANGELOG_OFFSETS_KEY = "changelog_offsets"


def job_group_name(job_name: str) -> str:
    """Offset-manager group under which a job checkpoints."""
    return f"job-{job_name}"


class CheckpointManager:
    """Commits and fetches a job's input positions with annotations."""

    def __init__(self, offset_manager: OffsetManager, job_name: str) -> None:
        self.offset_manager = offset_manager
        self.group = job_group_name(job_name)

    def commit(
        self,
        positions: dict[TopicPartition, int],
        metadata: dict[str, Any] | None = None,
    ) -> None:
        """Checkpoint all input positions in one logical operation."""
        for tp, offset in positions.items():
            self.offset_manager.commit(self.group, tp, offset, metadata)

    def commit_transactional(
        self,
        producer: Any,
        positions: dict[TopicPartition, int],
        metadata: dict[str, Any] | None = None,
    ) -> None:
        """Stage this checkpoint inside ``producer``'s open transaction.

        Exactly-once jobs never commit positions directly: the offsets ride
        the task's transaction (``send_offsets_to_transaction``) and become
        visible atomically with the task's outputs at commit.
        """
        producer.send_offsets_to_transaction(
            self.group, dict(positions), metadata
        )

    def fetch(self, tp: TopicPartition) -> OffsetCommit | None:
        return self.offset_manager.fetch(self.group, tp)

    def fetch_all(self) -> dict[TopicPartition, OffsetCommit]:
        return self.offset_manager.fetch_group(self.group)

    def position_for_version(
        self, tp: TopicPartition, version: str
    ) -> OffsetCommit | None:
        """Where did software version ``version`` get to on ``tp``?"""
        return self.offset_manager.offset_for_annotation(
            self.group, tp, "software_version", version
        )
