"""Dataflow graphs of jobs connected through the log (§3.2).

"Jobs can communicate with other jobs, forming a dataflow processing graph.
All jobs are decoupled by writing to and reading from the messaging layer,
which avoids the need for a back-pressure mechanism."

The :class:`Dataflow` wires several :class:`~repro.processing.job.JobRunner`
instances whose only coupling is topics, validates the topology, and pumps
them to completion.  E2 uses it to build N-stage pipelines and measure how
end-to-end latency grows with depth.
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx

from repro.common.errors import JobConfigError
from repro.messaging.cluster import MessagingCluster
from repro.processing.job import JobConfig, JobRunner, PollResult


class Dataflow:
    """A set of jobs connected via topics, run as one pipeline."""

    def __init__(self, cluster: MessagingCluster) -> None:
        self.cluster = cluster
        self._runners: dict[str, JobRunner] = {}
        self._outputs: dict[str, set[str]] = {}  # job -> declared output topics

    def add_job(
        self,
        config: JobConfig,
        outputs: Iterable[str] = (),
        **runner_kwargs,
    ) -> JobRunner:
        """Register a job.  ``outputs`` declares the topics its tasks emit to
        (used for topology validation; emission itself is dynamic)."""
        if config.name in self._runners:
            raise JobConfigError(f"job {config.name!r} already in dataflow")
        runner = JobRunner(config, self.cluster, **runner_kwargs)
        self._runners[config.name] = runner
        self._outputs[config.name] = set(outputs)
        return runner

    def runner(self, name: str) -> JobRunner:
        runner = self._runners.get(name)
        if runner is None:
            raise JobConfigError(f"unknown job {name!r}")
        return runner

    def runners(self) -> list[JobRunner]:
        return list(self._runners.values())

    # -- topology ---------------------------------------------------------------------

    def graph(self) -> "nx.DiGraph":
        """Bipartite job/topic graph of the declared topology."""
        graph = nx.DiGraph()
        for name, runner in self._runners.items():
            job_node = f"job:{name}"
            graph.add_node(job_node, kind="job")
            for topic in runner.config.inputs:
                graph.add_node(f"topic:{topic}", kind="topic")
                graph.add_edge(f"topic:{topic}", job_node)
            for topic in self._outputs[name]:
                graph.add_node(f"topic:{topic}", kind="topic")
                graph.add_edge(job_node, f"topic:{topic}")
        return graph

    def validate(self) -> None:
        """Reject cyclic topologies (they never drain under run_until_idle)."""
        graph = self.graph()
        try:
            cycle = nx.find_cycle(graph)
        except nx.NetworkXNoCycle:
            return
        pretty = " -> ".join(edge[0] for edge in cycle)
        raise JobConfigError(f"dataflow contains a cycle: {pretty}")

    def stages(self) -> list[list[str]]:
        """Jobs grouped by topological depth (generation order)."""
        graph = self.graph()
        generations = nx.topological_generations(graph)
        out: list[list[str]] = []
        for generation in generations:
            jobs = sorted(
                node[len("job:"):] for node in generation if node.startswith("job:")
            )
            if jobs:
                out.append(jobs)
        return out

    # -- execution ----------------------------------------------------------------------

    def poll_all(self) -> PollResult:
        """One pass over every job in topological stage order.

        Ticks the cluster first (without advancing time) so follower
        replication can advance high watermarks — otherwise freshly produced
        records on replicated topics are not yet visible to consumers.
        """
        self.cluster.tick(0.0)
        total = PollResult()
        order = [name for stage in self.stages() for name in stage] or list(
            self._runners
        )
        for name in order:
            result = self._runners[name].poll_once()
            total.records_processed += result.records_processed
            total.records_emitted += result.records_emitted
            total.latency += result.latency
        return total

    def run_until_idle(self, max_rounds: int = 1000) -> int:
        """Pump all jobs until a full round makes no progress.

        Returns total records processed.  Raises if the pipeline fails to
        drain within ``max_rounds`` (almost always a topology cycle that
        validation would have caught).
        """
        self.validate()
        total = 0
        for _ in range(max_rounds):
            result = self.poll_all()
            total += result.records_processed
            # Emissions without processing (window flushes) still need a
            # further round so downstream jobs consume them.
            if result.records_processed == 0 and result.records_emitted == 0:
                return total
        raise JobConfigError(
            f"dataflow did not drain within {max_rounds} rounds "
            f"(processed {total}); check for unbounded feedback"
        )

    def checkpoint_all(self) -> None:
        for runner in self._runners.values():
            runner.checkpoint()

    def backlog(self) -> int:
        return sum(runner.backlog() for runner in self._runners.values())
