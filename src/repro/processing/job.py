"""Jobs: parallel, stateful, checkpointed stream processing (§3.2).

A job consumes one or more input topics, runs one task instance per input
partition, and emits to output topics through the messaging layer.  This
module is the reproduction of Samza's container/task runtime:

* **parallelism** — task *i* owns partition *i* of every input topic;
* **state** — per-task stores write through to compacted changelog topics;
* **checkpoints** — input positions are committed to the offset manager with
  the job's software version as an annotation;
* **recovery** — :meth:`JobRunner.crash` / :meth:`JobRunner.recover` lose and
  rebuild state from changelogs, restarting from the last checkpoint;
* **decoupling** — all I/O goes through the log; a slow job simply falls
  behind (its backlog grows) without back-pressuring producers.

Simulated processing cost (CPU per message) is charged to the clock so that
end-to-end latencies across multi-job dataflows are meaningful (E2).
"""

from __future__ import annotations

import zlib

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.chaos.failpoints import SKIP, failpoint
from repro.common.clock import SimClock
from repro.common.errors import JobConfigError, MessagingError, TaskFailedError
from repro.common.metrics import metric_name, metric_segment
from repro.common.records import TRACE_HEADER, ConsumerRecord, TopicPartition
from repro.messaging.cluster import ACKS_LEADER, MessagingCluster
from repro.messaging.config import reject_unknown_options
from repro.messaging.producer import Producer
from repro.messaging.transactions import TransactionalProducer
from repro.observability.trace import TraceContext, Tracer, current_tracer
from repro.messaging.topic import TopicConfig
from repro.storage.log import LogConfig
from repro.processing.checkpoint import CHANGELOG_OFFSETS_KEY, CheckpointManager
from repro.processing.state import KeyValueState, changelog_topic_name
from repro.processing.store import STORE_TYPES, KeyValueStore, make_store
from repro.serving.replica import CatchUpStats, StandbyReplica
from repro.processing.task import Emit, MessageCollector, StreamTask, TaskContext


#: Processing guarantees a job may declare (§4.3's "ongoing effort").
AT_LEAST_ONCE = "at_least_once"
EXACTLY_ONCE = "exactly_once"
PROCESSING_GUARANTEES = (AT_LEAST_ONCE, EXACTLY_ONCE)


def transactional_id(job_name: str, task_id: int) -> str:
    """Stable transactional id of one task: restarts of the same task slot
    re-initialize the same id, which is what fences its zombies."""
    return f"{job_name}-{task_id}"


@dataclass(frozen=True)
class StoreConfig:
    """Declaration of one state store used by a job's tasks."""

    name: str
    store_type: str = "memory"
    changelog: bool = True
    store_options: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise JobConfigError("store name must be non-empty")
        if self.store_type not in STORE_TYPES:
            raise JobConfigError(
                f"store {self.name!r}: unknown store_type "
                f"{self.store_type!r}; known: {sorted(STORE_TYPES)}"
            )

    @classmethod
    def from_kwargs(cls, **kwargs: Any) -> "StoreConfig":
        """Build from loose keywords; unknown keywords raise ConfigError."""
        reject_unknown_options(cls, kwargs)
        return cls(**kwargs)


@dataclass(frozen=True)
class JobConfig:
    """Static definition of one processing job."""

    name: str
    inputs: tuple[str, ...] | list[str]
    task_factory: Callable[[], StreamTask]
    stores: tuple[StoreConfig, ...] | list[StoreConfig] = ()
    checkpoint_interval: int = 100          # records per task between checkpoints
    window_interval: float | None = None    # simulated seconds between window()
    version: str = "v1"
    acks: str = ACKS_LEADER
    cpu_cost_per_message: float | None = None  # defaults to the cost model's
    changelog_replication: int = 1
    changelog_segment_messages: int = 1000  # smaller = compaction kicks in sooner
    processing_guarantee: str = AT_LEAST_ONCE
    #: Exactly-once only: staged records per partition before the task's
    #: transactional producer ships a batch (the rest flush at commit).
    #: Batching amortizes the acks=all round trip each staged write pays.
    txn_linger_messages: int = 16
    #: Warm store copies per task, kept on other containers by tailing the
    #: changelog.  Failover and elastic migration promote one and pay only
    #: the catch-up tail instead of a full changelog restore, and the
    #: serving router can read them for stale-tolerant load spreading.
    num_standby_replicas: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise JobConfigError("job name must be non-empty")
        if self.processing_guarantee not in PROCESSING_GUARANTEES:
            raise JobConfigError(
                f"processing_guarantee must be one of {PROCESSING_GUARANTEES}, "
                f"got {self.processing_guarantee!r}"
            )
        if not self.inputs:
            raise JobConfigError(f"job {self.name!r} declares no inputs")
        if self.checkpoint_interval <= 0:
            raise JobConfigError("checkpoint_interval must be > 0")
        if self.txn_linger_messages < 1:
            raise JobConfigError("txn_linger_messages must be >= 1")
        if self.window_interval is not None and self.window_interval <= 0:
            raise JobConfigError("window_interval must be > 0")
        if self.num_standby_replicas < 0:
            raise JobConfigError("num_standby_replicas must be >= 0")
        names = [s.name for s in self.stores]
        if len(set(names)) != len(names):
            raise JobConfigError(f"duplicate store names in job {self.name!r}")

    @classmethod
    def from_kwargs(cls, **kwargs: Any) -> "JobConfig":
        """Build from loose keywords; unknown keywords raise ConfigError."""
        reject_unknown_options(cls, kwargs)
        return cls(**kwargs)


@dataclass
class PollResult:
    """Outcome of one scheduling pass over all tasks."""

    records_processed: int = 0
    records_emitted: int = 0
    latency: float = 0.0


class _TaskInstance:
    """Runtime state of one task: user logic + positions + stores."""

    def __init__(
        self,
        task_id: int,
        task: StreamTask,
        partitions: list[TopicPartition],
        stores: dict[str, KeyValueState],
        context: TaskContext,
    ) -> None:
        self.task_id = task_id
        self.task = task
        self.partitions = partitions
        self.stores = stores
        self.context = context
        self.positions: dict[TopicPartition, int] = {}
        self.records_since_checkpoint = 0
        self.last_window_at = 0.0


class JobRunner:
    """Executes one job against a messaging cluster."""

    def __init__(
        self,
        config: JobConfig,
        cluster: MessagingCluster,
        auto_advance_clock: bool = True,
        max_fetch_per_partition: int = 200,
    ) -> None:
        self.config = config
        self.cluster = cluster
        self.auto_advance_clock = auto_advance_clock
        self.max_fetch_per_partition = max_fetch_per_partition
        self.clock = cluster.clock
        self.metrics = cluster.metrics
        # Per-job metric names, precomputed once (convention:
        # layer.component.metric, with the job name as a sub-component).
        self._m_processed = metric_name(
            "processing", "job", metric_segment(config.name), "processed"
        )
        self._m_record_age = metric_name(
            "processing", "job", metric_segment(config.name), "record_age"
        )
        # Freshness stamp: a hoisted gauge (safe now that registry.reset()
        # zeroes in place) tracking the age of the last record processed —
        # the end-to-end signal the SLO monitor samples on its cadence.
        self._g_freshness = self.metrics.gauge(metric_name(
            "processing", "job", metric_segment(config.name), "freshness"
        ))
        # Retry jitter seeded from the job name, not the process-global
        # producer id: a job's send latencies must replay identically no
        # matter how many producers other code created first.
        jitter = zlib.crc32(config.name.encode())
        self.exactly_once = config.processing_guarantee == EXACTLY_ONCE
        # Under exactly-once every read in the job — inputs and changelog
        # restores — is read_committed, so neither open nor aborted
        # transactions (our own or an upstream job's) are ever observed.
        self.isolation = (
            "read_committed" if self.exactly_once else "read_uncommitted"
        )
        #: task_id -> fenced transactional producer (exactly-once only).
        #: Rebuilt by ``_build_tasks`` so restart and migration epoch-bump.
        self._txn_producers: dict[int, TransactionalProducer] = {}
        self.producer = Producer(
            cluster, acks=config.acks, retry_jitter_seed=jitter
        )
        # Changelog writes are the job's state durability: they always use
        # acks=all, independent of the output acks, so a checkpointed input
        # offset can never outlive the state updates it implies.  (This is
        # the paper's "fall back to the highly-available messaging layer".)
        self._changelog_producer = Producer(
            cluster, acks="all", retry_jitter_seed=jitter + 1
        )
        self.checkpoints = CheckpointManager(cluster.offset_manager, config.name)
        self.cpu_cost = (
            config.cpu_cost_per_message
            if config.cpu_cost_per_message is not None
            else cluster.cost_model.cpu_per_message
        )
        self.num_tasks = self._discover_parallelism()
        self._ensure_changelog_topics()
        self._tasks: list[_TaskInstance] = []
        self._build_tasks()
        #: task_id -> ordered standby sets, each mapping store name to a
        #: warm replica.  Standbys live on *other* containers, so a
        #: container crash() leaves them intact — that is what makes
        #: promotion cheaper than a cold changelog restore.
        self._standbys: dict[int, list[dict[str, StandbyReplica]]] = {}
        self._standby_seq: dict[int, int] = {}
        #: task_id -> {store: changelog end offset at the last checkpoint} —
        #: the snapshot bound state servers serve at (see repro.serving).
        self._snapshot_offsets: dict[int, dict[str, int]] = {}
        self._snapshot_times: dict[int, float] = {}
        self._m_promotions = metric_name(
            "serving", "standby", metric_segment(config.name), "promotions"
        )
        self._build_standbys()
        self._seed_snapshots()
        self.running = True
        self.records_processed = 0
        self.records_emitted = 0

    # -- setup ---------------------------------------------------------------------

    def _discover_parallelism(self) -> int:
        counts = []
        for topic in self.config.inputs:
            counts.append(len(self.cluster.partitions_of(topic)))
        return max(counts)

    def _ensure_changelog_topics(self) -> None:
        for store_config in self.config.stores:
            if not store_config.changelog:
                continue
            topic = changelog_topic_name(self.config.name, store_config.name)
            if topic not in self.cluster.topics():
                self.cluster.create_topic(
                    TopicConfig(
                        name=topic,
                        num_partitions=self.num_tasks,
                        replication_factor=self.config.changelog_replication,
                        cleanup_policy="compact",
                        log=LogConfig(
                            segment_max_messages=self.config.changelog_segment_messages
                        ),
                    )
                )

    def _build_tasks(self) -> None:
        self._tasks = []
        for task_id in range(self.num_tasks):
            if self.exactly_once:
                # Re-initializing the stable id bumps the epoch: zombies of
                # the previous incarnation are fenced, an undecided crashed
                # transaction aborts, a decided one rolls forward — all
                # *before* the changelog restore reads read_committed.
                self._txn_producers[task_id] = TransactionalProducer(
                    self.cluster,
                    transactional_id(self.config.name, task_id),
                    linger_messages=self.config.txn_linger_messages,
                )
            partitions = [
                TopicPartition(topic, task_id)
                for topic in self.config.inputs
                if task_id < len(self.cluster.partitions_of(topic))
            ]
            stores = self._build_stores(task_id)
            context = TaskContext(
                self.config.name,
                task_id,
                self.clock,
                stores,
                processing_guarantee=self.config.processing_guarantee,
            )
            task = self.config.task_factory()
            instance = _TaskInstance(task_id, task, partitions, stores, context)
            self._seed_positions(instance)
            instance.last_window_at = self.clock.now()
            init = getattr(task, "init", None)
            if callable(init):
                init(context)
            self._tasks.append(instance)

    def _build_stores(self, task_id: int) -> dict[str, KeyValueState]:
        stores: dict[str, KeyValueState] = {}
        for store_config in self.config.stores:
            append = None
            if store_config.changelog:
                topic = changelog_topic_name(self.config.name, store_config.name)

                def append(key: Any, value: Any, _topic=topic, _p=task_id) -> None:
                    if self.exactly_once:
                        # State updates join the task's transaction: a
                        # changelog entry is only ever restored if the
                        # outputs and offsets it belongs with committed.
                        self._txn_producer(_p).send(
                            _topic, value, key=_key_wrap(key), partition=_p
                        )
                    else:
                        self._changelog_producer.send(
                            _topic, value, key=_key_wrap(key), partition=_p
                        )

            stores[store_config.name] = KeyValueState(
                store_config.name,
                make_store(store_config.store_type, **store_config.store_options),
                changelog_append=append,
            )
        return stores

    def _seed_positions(self, instance: _TaskInstance) -> None:
        """Start from the last checkpoint, else from the earliest offset."""
        for tp in instance.partitions:
            commit = self.checkpoints.fetch(tp)
            if commit is not None:
                instance.positions[tp] = commit.offset
            else:
                instance.positions[tp] = self.cluster.beginning_offset(tp)

    def _txn_producer(self, task_id: int) -> TransactionalProducer:
        """The task's transactional producer, with a transaction open.

        Transactions begin lazily at the first write (emit or changelog
        entry) after a commit and stay open until the next checkpoint
        boundary — the checkpoint *is* the commit.
        """
        producer = self._txn_producers[task_id]
        if not producer.in_transaction:
            producer.begin()
        return producer

    # -- standby replicas / snapshots (serving + fast failover) ------------------------

    def _changelogged_stores(self) -> list[StoreConfig]:
        return [sc for sc in self.config.stores if sc.changelog]

    def _new_standby_set(self, task_id: int) -> dict[str, StandbyReplica]:
        replica_id = self._standby_seq.get(task_id, 0)
        self._standby_seq[task_id] = replica_id + 1
        return {
            sc.name: StandbyReplica(
                self.cluster,
                self.config.name,
                sc.name,
                task_id,
                store_type=sc.store_type,
                store_options=dict(sc.store_options),
                isolation=self.isolation,
                replica_id=replica_id,
            )
            for sc in self._changelogged_stores()
        }

    def _build_standbys(self) -> None:
        if self.config.num_standby_replicas <= 0 or not self._changelogged_stores():
            return
        for task_id in range(self.num_tasks):
            self._standbys[task_id] = [
                self._new_standby_set(task_id)
                for _ in range(self.config.num_standby_replicas)
            ]

    def _catch_up_standbys(self, task_id: int) -> None:
        """Warm the task's standbys at a checkpoint boundary.

        This is the only place standbys advance during normal processing:
        the checkpoint is a deterministic point in the run, so a job drains
        byte-identically whether it keeps 0 or N standbys, and the standby
        lag is bounded by the checkpoint interval.  Catch-up latency is
        *not* charged to the job's poll result — standbys burn other
        containers' cycles.
        """
        for replicas in self._standbys.get(task_id, ()):
            for replica in replicas.values():
                try:
                    replica.catch_up()
                except MessagingError:
                    # Changelog leader offline (or chaos in the fetch path):
                    # the standby stays stale and pays a larger catch-up
                    # tail at promotion.  Never fail a checkpoint for it.
                    continue

    def _record_snapshot(self, task_id: int) -> None:
        """Pin the changelog end offsets that define 'state as of the last
        checkpoint' — the bound snapshot-consistency reads serve at."""
        offsets: dict[str, int] = {}
        try:
            for sc in self._changelogged_stores():
                tp = TopicPartition(
                    changelog_topic_name(self.config.name, sc.name), task_id
                )
                offsets[sc.name] = self.cluster.end_offset(tp)
        except MessagingError:
            return  # changelog leader offline; keep the previous snapshot
        self._snapshot_offsets[task_id] = offsets
        self._snapshot_times[task_id] = self.clock.now()

    def _changelog_offsets_stamp(self, task_id: int) -> dict[str, int] | None:
        """Changelog end offsets for the checkpoint metadata stamp (``None``
        when the job has no changelogged stores or a leader is offline)."""
        stores = self._changelogged_stores()
        if not stores:
            return None
        offsets: dict[str, int] = {}
        try:
            for sc in stores:
                tp = TopicPartition(
                    changelog_topic_name(self.config.name, sc.name), task_id
                )
                offsets[sc.name] = self.cluster.end_offset(tp)
        except MessagingError:
            return None
        return offsets

    def _seed_snapshots(self) -> None:
        """Initial snapshot bounds: the last checkpoint's durable stamp when
        one exists, else the changelogs' current end offsets."""
        for instance in self._tasks:
            stamped = None
            for tp in instance.partitions:
                commit = self.checkpoints.fetch(tp)
                if commit is not None and commit.metadata:
                    stamped = commit.metadata.get(CHANGELOG_OFFSETS_KEY)
                    if stamped is not None:
                        break
            if stamped is not None:
                self._snapshot_offsets[instance.task_id] = dict(stamped)
                self._snapshot_times[instance.task_id] = self.clock.now()
            else:
                self._record_snapshot(instance.task_id)

    def snapshot_offset(self, task_id: int, store_name: str) -> int | None:
        """Changelog end offset of ``store_name`` at the task's last
        checkpoint (``None`` if never recorded, e.g. leader offline)."""
        return self._snapshot_offsets.get(task_id, {}).get(store_name)

    def snapshot_time(self, task_id: int) -> float | None:
        """Simulated time the task's snapshot bound was last advanced."""
        return self._snapshot_times.get(task_id)

    def standby_replicas(self, task_id: int) -> list[dict[str, StandbyReplica]]:
        """The task's live standby sets (possibly empty), freshest first."""
        return list(self._standbys.get(task_id, ()))

    def promote_standby(
        self, task_id: int
    ) -> dict[str, tuple[KeyValueStore, CatchUpStats]] | None:
        """Consume the task's first standby set: final catch-up tail, then
        hand each store to the caller (recovery swaps them into the rebuilt
        task).  Returns ``None`` when the task keeps no standbys.

        Promotion consumes the set win or lose — a fresh cold standby is
        seeded in its place and warms at the next checkpoint boundaries —
        so a failed promotion (chaos failpoint, dead changelog leader)
        falls back to a cold restore rather than retrying a broken replica.
        """
        sets = self._standbys.get(task_id)
        if not sets:
            return None
        replicas = sets.pop(0)
        try:
            promoted = {
                name: replica.promote() for name, replica in replicas.items()
            }
        finally:
            sets.append(self._new_standby_set(task_id))
        self.metrics.counter(self._m_promotions).increment(1)
        return promoted

    # -- processing loop --------------------------------------------------------------

    def poll_once(self, max_messages: int | None = None) -> PollResult:
        """One pass: every task drains up to its budget from its partitions.

        Runs one background replication pass first (without advancing time)
        so freshly produced records on replicated topics become visible —
        the always-running follower fetch loop of a real cluster.
        """
        if not self.running:
            raise JobConfigError(f"job {self.config.name!r} is not running")
        # Armed with `skipping`, the whole pass is lost — a stalled container
        # whose backlog simply grows (the paper's slow-job decoupling).
        if failpoint("job.poll", job=self.config.name) is SKIP:
            return PollResult()
        self.cluster.tick(0.0)
        result = PollResult()
        for instance in self._tasks:
            budget = (
                max_messages
                if max_messages is not None
                else self.max_fetch_per_partition
            )
            self._poll_task(instance, budget, result)
        if result.latency and self.auto_advance_clock and isinstance(self.clock, SimClock):
            self.clock.advance(result.latency)
        if result.records_processed:
            self.metrics.counter(self._m_processed).increment(
                result.records_processed
            )
        return result

    def poll_tasks(
        self, task_ids: list[int], max_messages: int | None = None
    ) -> PollResult:
        """One pass over a subset of tasks sharing one message budget.

        This is one *container's* scheduling quantum in the elastic runtime:
        the container hosts ``task_ids`` and can process at most
        ``max_messages`` records this pass, however they are spread over its
        tasks (served in task order, each draining what the previous left).
        Unlike :meth:`poll_once`, the budget is shared, not per task.
        """
        if not self.running:
            raise JobConfigError(f"job {self.config.name!r} is not running")
        if failpoint("job.poll", job=self.config.name) is SKIP:
            return PollResult()
        self.cluster.tick(0.0)
        result = PollResult()
        budget = (
            max_messages
            if max_messages is not None
            else self.max_fetch_per_partition
        )
        for task_id in task_ids:
            if budget <= 0:
                break
            before = result.records_processed
            self._poll_task(self._tasks[task_id], budget, result)
            budget -= result.records_processed - before
        if result.latency and self.auto_advance_clock and isinstance(self.clock, SimClock):
            self.clock.advance(result.latency)
        if result.records_processed:
            self.metrics.counter(self._m_processed).increment(
                result.records_processed
            )
        return result

    def _poll_task(
        self,
        instance: _TaskInstance,
        budget: int,
        result: PollResult,
    ) -> None:
        collector = MessageCollector()
        tracer = current_tracer()
        for tp in instance.partitions:
            if budget <= 0:
                break
            fetched = self.cluster.fetch(
                tp.topic, tp.partition, instance.positions[tp], budget,
                isolation=self.isolation,
            )
            result.latency += fetched.latency
            for record in fetched.records:
                ctx = self._process_record(
                    instance, record, collector, result, tracer
                )
                # Drain per record (not per pass) so each emit can be
                # attributed to the input record that caused it — derived-feed
                # records continue the input's trace under its process span.
                self._send_emits(instance, collector.drain(), ctx, result)
            if fetched.records:
                budget -= len(fetched.records)
            instance.positions[tp] = max(
                instance.positions[tp], fetched.next_offset
            )
        self._maybe_window(instance, result)
        if instance.records_since_checkpoint >= self.config.checkpoint_interval:
            self._checkpoint_task(instance)

    def _send_emits(
        self,
        instance: _TaskInstance,
        emits: list[Emit],
        ctx: TraceContext | None,
        result: PollResult,
    ) -> None:
        for emit in emits:
            headers = emit.headers
            if ctx is not None:
                headers = {**(headers or {}), TRACE_HEADER: ctx}
            if self.exactly_once:
                # Staged inside the task's transaction: invisible to
                # read_committed readers until the checkpoint commits.
                ack = self._txn_producer(instance.task_id).send(
                    emit.topic,
                    emit.value,
                    key=emit.key,
                    partition=emit.partition,
                    timestamp=emit.timestamp,
                    headers=headers,
                )
            else:
                ack = self.producer.send(
                    emit.topic,
                    emit.value,
                    key=emit.key,
                    partition=emit.partition,
                    timestamp=emit.timestamp,
                    headers=headers,
                )
            if ack is not None:
                result.latency += ack.latency
        result.records_emitted += len(emits)
        self.records_emitted += len(emits)

    def _process_record(
        self,
        instance: _TaskInstance,
        record: ConsumerRecord,
        collector: MessageCollector,
        result: PollResult,
        tracer: Tracer | None = None,
    ) -> TraceContext | None:
        """Run the task on one record; returns the trace context its emits
        should carry (child of the ``job.process`` span), or ``None``."""
        span = None
        if tracer is not None and record.headers:
            parent = record.headers.get(TRACE_HEADER)
            if parent is not None:
                span = tracer.open_span(
                    "job.process",
                    parent,
                    start=self.clock.now(),
                    job=self.config.name,
                    task=instance.task_id,
                    topic=record.topic,
                    partition=record.partition,
                    offset=record.offset,
                )
        try:
            instance.task.process(record, collector)
        except Exception as exc:
            if span is not None:
                span.attrs["error"] = type(exc).__name__
                tracer.close(span)
            raise TaskFailedError(
                f"job {self.config.name!r} task {instance.task_id} failed on "
                f"{record.topic}-{record.partition}@{record.offset}: {exc}"
            ) from exc
        result.records_processed += 1
        result.latency += self.cpu_cost
        instance.records_since_checkpoint += 1
        self.records_processed += 1
        age = self.clock.now() - record.timestamp
        if age >= 0:
            self.metrics.histogram(self._m_record_age).observe(age)
            self._g_freshness.set(age)
        if span is not None:
            # CPU cost is charged to the pass latency, not the clock yet;
            # the span still records it so stage breakdowns see task time.
            tracer.close(span, end=span.start + self.cpu_cost)
            return span.context()
        return None

    def _maybe_window(self, instance: _TaskInstance, result: PollResult) -> None:
        if self.config.window_interval is None:
            return
        window = getattr(instance.task, "window", None)
        if not callable(window):
            return
        now = self.clock.now()
        if now - instance.last_window_at >= self.config.window_interval:
            instance.last_window_at = now
            collector = MessageCollector()
            window(collector)
            # Window emits aggregate many inputs; they start fresh traces.
            self._send_emits(instance, collector.drain(), None, result)

    def _checkpoint_task(self, instance: _TaskInstance) -> None:
        # Armed raising, this is a crash *before* the checkpoint decided
        # anything: at-least-once replays (duplicates), exactly-once aborts.
        failpoint(
            "job.checkpoint", job=self.config.name, task=instance.task_id
        )
        metadata = {
            "software_version": self.config.version,
            "task_id": instance.task_id,
        }
        stamp = self._changelog_offsets_stamp(instance.task_id)
        if stamp is not None:
            # Durable record of the changelog positions this checkpoint
            # covers, so a brand-new runner can seed its snapshot bound from
            # the offset manager.  Under exactly-once this is a lower bound
            # (the open transaction's tail lands at commit); the in-memory
            # post-commit _record_snapshot value is the authoritative bound.
            metadata[CHANGELOG_OFFSETS_KEY] = stamp
        if self.exactly_once:
            producer = self._txn_producers[instance.task_id]
            if producer.in_transaction:
                # The checkpoint IS the transaction commit: outputs,
                # changelog entries, and input offsets become visible
                # atomically (or not at all).
                self.checkpoints.commit_transactional(
                    producer, instance.positions, metadata
                )
                producer.commit()
            else:
                # Nothing was written since the last commit (the task
                # filtered everything): positions alone commit directly.
                self.checkpoints.commit(dict(instance.positions), metadata)
        else:
            self.checkpoints.commit(dict(instance.positions), metadata)
        instance.records_since_checkpoint = 0
        self._record_snapshot(instance.task_id)
        self._catch_up_standbys(instance.task_id)

    def checkpoint(self) -> None:
        """Force a checkpoint of every task's positions."""
        for instance in self._tasks:
            self._checkpoint_task(instance)

    def run_until_idle(self, max_polls: int = 1000) -> int:
        """Poll until no task makes progress; returns records processed."""
        total = 0
        for _ in range(max_polls):
            result = self.poll_once()
            total += result.records_processed
            if result.records_processed == 0:
                break
        if self.exactly_once:
            # Commit the trailing open transactions so everything the run
            # produced is visible to read_committed readers downstream.
            self.checkpoint()
        return total

    # -- backlog / introspection ---------------------------------------------------------

    def backlog(self) -> int:
        """Input records available but not yet processed."""
        pending = 0
        for instance in self._tasks:
            for tp, position in instance.positions.items():
                pending += max(0, self.cluster.end_offset(tp) - position)
        return pending

    def freshness(self) -> float:
        """Age (simulated seconds) of the last record this job processed.

        0.0 until the first record; sampled by the SLO monitor as the
        end-to-end freshness signal.
        """
        return self._g_freshness.value

    def task(self, task_id: int) -> _TaskInstance:
        return self._tasks[task_id]

    def tasks(self) -> list[_TaskInstance]:
        return list(self._tasks)

    def state_size_bytes(self) -> int:
        return sum(
            state.approximate_size_bytes()
            for instance in self._tasks
            for state in instance.stores.values()
        )

    # -- failure / recovery (§3.2) ----------------------------------------------------------

    def crash(self) -> None:
        """Simulate a container crash: all in-memory task state is lost.

        Standby replicas survive — they live on other containers, which is
        the whole reason :meth:`recover` can promote one instead of
        replaying the full changelog.
        """
        self.running = False
        self._tasks = []

    def recover(self) -> "RecoveryReport":
        """Restart after a crash: rebuild stores from changelogs, then resume
        from the last checkpoint.  Returns timing/volume of the restore."""
        from repro.processing.recovery import restore_job_state  # local: avoid cycle

        self._build_tasks()
        report = restore_job_state(self)
        self.running = True
        for instance in self._tasks:
            self._record_snapshot(instance.task_id)
        if self.auto_advance_clock and isinstance(self.clock, SimClock):
            self.clock.advance(report.simulated_seconds)
        return report

    def migrate_task(self, task_id: int) -> "RecoveryReport":
        """Restart one task as if it landed on a fresh container.

        The elastic controller calls this at a checkpoint boundary when a
        scale event moves a task between containers: the in-memory task
        object and its stores are discarded, state is rebuilt from the
        changelogs (promoting a standby replica when the job keeps them, so
        the move pays only a catch-up tail), and positions resume from the
        last checkpoint (which the
        controller takes immediately before, so processing continues exactly
        where it left off — no replay, no skipped records).  The caller is
        responsible for charging ``report.simulated_seconds`` to the clock.
        """
        from repro.processing.recovery import restore_task_state  # local: avoid cycle

        old = self._tasks[task_id]
        if self.exactly_once:
            producer = self._txn_producers[task_id]
            if producer.in_transaction:
                # Commit-or-abort before the task moves: the new container
                # must not inherit an open transaction.  Everything staged
                # so far is fully processed work, so it commits — together
                # with the positions that account for it.
                self.checkpoints.commit_transactional(
                    producer,
                    old.positions,
                    {
                        "software_version": self.config.version,
                        "task_id": task_id,
                    },
                )
                producer.commit()
                old.records_since_checkpoint = 0
        stores = self._build_stores(task_id)
        context = TaskContext(
            self.config.name,
            task_id,
            self.clock,
            stores,
            processing_guarantee=self.config.processing_guarantee,
        )
        task = self.config.task_factory()
        instance = _TaskInstance(task_id, task, old.partitions, stores, context)
        self._tasks[task_id] = instance
        try:
            report = restore_task_state(self, task_id)
            self._seed_positions(instance)
        except Exception:
            # Mid-restore failure (e.g. changelog leader offline): the old
            # container keeps the task; the controller may retry later.
            self._tasks[task_id] = old
            raise
        if self.exactly_once:
            # Fresh incarnation on the new container: the epoch bump fences
            # any zombie writes from the task's previous home.
            self._txn_producers[task_id] = TransactionalProducer(
                self.cluster,
                transactional_id(self.config.name, task_id),
                linger_messages=self.config.txn_linger_messages,
            )
        instance.last_window_at = self.clock.now()
        self._record_snapshot(task_id)
        init = getattr(task, "init", None)
        if callable(init):
            init(context)
        return report

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"JobRunner({self.config.name!r}, tasks={len(self._tasks)}, "
            f"processed={self.records_processed})"
        )


def _key_wrap(key: Any) -> Any:
    """Changelog keys must be hashable and stable; pass through as-is."""
    return key


# Re-exported here because recovery reports are part of the job API surface.
from repro.processing.recovery import RecoveryReport  # noqa: E402  (cycle-free tail import)
