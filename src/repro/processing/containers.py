"""Resource isolation: ETL-as-a-service (§3.2, §4.4).

"To isolate resources on a per-job basis, the processing layer can use
standard resource isolation mechanisms such as container-based OS isolation
... restricting the memory and CPU resources of each job."

:class:`IsolatedHost` simulates one worker machine running several jobs.
Each scheduling quantum it divides the machine's CPU seconds among the
hosted jobs:

* **isolation on** (cgroup-like): each job gets at most its CPU quota, so a
  runaway "hog" cannot take the victim's share;
* **isolation off** (the pre-Liquid shared sub-systems of §5.1): capacity is
  split proportionally to demand, so a hog with a huge backlog starves
  well-behaved neighbours — exactly the failure mode the paper's data
  cleaning teams suffered.

Memory quotas bound state-store size; enforcement is either ``hard``
(raise :class:`~repro.common.errors.QuotaExceededError`, the OOM-kill
analogue) or ``soft`` (count violations).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError, QuotaExceededError
from repro.processing.job import JobRunner


@dataclass(frozen=True)
class ResourceQuota:
    """Per-job resource limits."""

    cpu_cores: float = 1.0
    memory_bytes: int = 64 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.cpu_cores <= 0:
            raise ConfigError("cpu_cores must be > 0")
        if self.memory_bytes <= 0:
            raise ConfigError("memory_bytes must be > 0")


@dataclass
class QuantumReport:
    """Per-quantum scheduling outcome."""

    allocations: dict[str, float]         # job -> cpu seconds granted
    processed: dict[str, int]             # job -> records processed
    memory_violations: dict[str, int]     # job -> bytes over quota


class _HostedJob:
    __slots__ = ("runner", "quota", "memory_violations")

    def __init__(self, runner: JobRunner, quota: ResourceQuota) -> None:
        self.runner = runner
        self.quota = quota
        self.memory_violations = 0


class IsolatedHost:
    """One machine's CPU/memory shared by several jobs."""

    def __init__(
        self,
        cores: int = 4,
        isolation: bool = True,
        memory_enforcement: str = "soft",
    ) -> None:
        if cores <= 0:
            raise ConfigError("cores must be > 0")
        if memory_enforcement not in ("soft", "hard"):
            raise ConfigError("memory_enforcement must be 'soft' or 'hard'")
        self.cores = cores
        self.isolation = isolation
        self.memory_enforcement = memory_enforcement
        self._jobs: dict[str, _HostedJob] = {}

    def add_job(self, runner: JobRunner, quota: ResourceQuota) -> None:
        name = runner.config.name
        if name in self._jobs:
            raise ConfigError(f"job {name!r} already hosted")
        if self.isolation:
            total = sum(j.quota.cpu_cores for j in self._jobs.values())
            if total + quota.cpu_cores > self.cores:
                raise ConfigError(
                    f"cpu over-commit: {total + quota.cpu_cores} > {self.cores} "
                    "cores (isolation requires reservations to fit)"
                )
        self._jobs[name] = _HostedJob(runner, quota)

    # -- scheduling -------------------------------------------------------------------

    def run_quantum(self, dt: float = 0.1) -> QuantumReport:
        """Schedule one quantum of ``dt`` seconds across hosted jobs.

        A job's CPU *demand* is the time needed to drain its current backlog.
        The allocation policy (isolated vs. shared) converts demand into a
        message budget for :meth:`JobRunner.poll_once`.
        """
        capacity = self.cores * dt
        demands: dict[str, float] = {}
        for name, hosted in self._jobs.items():
            backlog = hosted.runner.backlog()
            demands[name] = backlog * hosted.runner.cpu_cost
        allocations = self._allocate(demands, capacity, dt)
        processed: dict[str, int] = {}
        violations: dict[str, int] = {}
        for name, hosted in self._jobs.items():
            budget_msgs = int(allocations[name] / hosted.runner.cpu_cost)
            if budget_msgs > 0:
                # Jobs poll without advancing the shared clock themselves;
                # the host advances it once per quantum below.
                was_auto = hosted.runner.auto_advance_clock
                hosted.runner.auto_advance_clock = False
                result = hosted.runner.poll_once(max_messages=budget_msgs)
                hosted.runner.auto_advance_clock = was_auto
                processed[name] = result.records_processed
            else:
                processed[name] = 0
            violations[name] = self._check_memory(hosted)
        self._advance_clock(dt)
        return QuantumReport(allocations, processed, violations)

    def _allocate(
        self, demands: dict[str, float], capacity: float, dt: float
    ) -> dict[str, float]:
        if self.isolation:
            # Hard reservations: a job gets at most quota*dt, guaranteed.
            return {
                name: min(demands[name], self._jobs[name].quota.cpu_cores * dt)
                for name in demands
            }
        total_demand = sum(demands.values())
        if total_demand <= capacity or total_demand == 0:
            return dict(demands)
        # Contention without isolation: proportional to demand, so the
        # biggest backlog (the hog) wins.
        return {
            name: capacity * demand / total_demand
            for name, demand in demands.items()
        }

    def _check_memory(self, hosted: _HostedJob) -> int:
        used = hosted.runner.state_size_bytes()
        over = max(0, used - hosted.quota.memory_bytes)
        if over:
            hosted.memory_violations += 1
            if self.memory_enforcement == "hard":
                raise QuotaExceededError(
                    f"job {hosted.runner.config.name!r} uses {used}B of state, "
                    f"quota {hosted.quota.memory_bytes}B"
                )
        return over

    def _advance_clock(self, dt: float) -> None:
        clock = next(iter(self._jobs.values())).runner.clock if self._jobs else None
        if clock is not None and hasattr(clock, "advance"):
            clock.advance(dt)

    # -- introspection -------------------------------------------------------------------

    def jobs(self) -> list[str]:
        return sorted(self._jobs)

    def memory_violations(self, name: str) -> int:
        return self._jobs[name].memory_violations

    def memory_ratio(self, name: str) -> float:
        """Fraction of a hosted job's memory quota currently in use.

        The pressure signal a :class:`~repro.elasticity.backpressure.BackpressureValve`
        watches: >= 1.0 means the job is at/over its quota.
        """
        hosted = self._jobs[name]
        return hosted.runner.state_size_bytes() / hosted.quota.memory_bytes

    def run_quanta(self, n: int, dt: float = 0.1) -> list[QuantumReport]:
        return [self.run_quantum(dt) for _ in range(n)]
