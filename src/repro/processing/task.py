"""The stream-task programming model (§3.2).

"a job in the processing layer embodies computation over streams ... For
parallel processing, a job is divided into tasks that process different
partitions of a topic.  The data for a stateless job is entirely contained
in the input stream, while a stateful job has explicit state that evolves as
part of the computation."

User code implements :class:`StreamTask` (the Samza interface):
``process(record, collector)`` per input record, optional ``init(context)``
at startup/restore and ``window(collector)`` on a timer.  Tasks never touch
the messaging layer directly — they receive records and emit through the
collector, which is how the job runner keeps jobs decoupled through the log
(the paper's no-backpressure design decision).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol, runtime_checkable

from repro.common.clock import Clock
from repro.common.errors import JobConfigError
from repro.processing.state import KeyValueState


@dataclass
class Emit:
    """One record emitted by a task."""

    topic: str
    value: Any
    key: Any = None
    partition: int | None = None
    timestamp: float | None = None
    headers: dict[str, Any] = field(default_factory=dict)


class MessageCollector:
    """Buffers task outputs; the job runner flushes them to the producer."""

    def __init__(self) -> None:
        self._emits: list[Emit] = []

    def send(
        self,
        topic: str,
        value: Any,
        key: Any = None,
        partition: int | None = None,
        timestamp: float | None = None,
        headers: dict[str, Any] | None = None,
    ) -> None:
        self._emits.append(
            Emit(topic, value, key, partition, timestamp, headers or {})
        )

    def drain(self) -> list[Emit]:
        emits, self._emits = self._emits, []
        return emits

    def __len__(self) -> int:
        return len(self._emits)


class TaskContext:
    """Everything a task may touch: its identity, clock, and state stores."""

    def __init__(
        self,
        job_name: str,
        task_id: int,
        clock: Clock,
        stores: dict[str, KeyValueState],
        processing_guarantee: str = "at_least_once",
    ) -> None:
        self.job_name = job_name
        self.task_id = task_id
        self.clock = clock
        self.processing_guarantee = processing_guarantee
        self._stores = stores

    @property
    def exactly_once(self) -> bool:
        """True when this task runs under the exactly-once guarantee."""
        return self.processing_guarantee == "exactly_once"

    def store(self, name: str) -> KeyValueState:
        """Look up a state store declared in the job config."""
        store = self._stores.get(name)
        if store is None:
            raise JobConfigError(
                f"job {self.job_name!r} declares no store {name!r}; "
                f"declared: {sorted(self._stores)}"
            )
        return store

    def now(self) -> float:
        return self.clock.now()


@runtime_checkable
class StreamTask(Protocol):
    """User-implemented per-partition processing logic."""

    def process(self, record: Any, collector: MessageCollector) -> None:
        """Handle one input record; emit through the collector."""
        ...


class InitableTask(Protocol):
    """Optional: tasks needing setup implement ``init``."""

    def init(self, context: TaskContext) -> None: ...


class WindowableTask(Protocol):
    """Optional: tasks with periodic work implement ``window``."""

    def window(self, collector: MessageCollector) -> None: ...


class ClosableTask(Protocol):
    """Optional: tasks with teardown implement ``close``."""

    def close(self) -> None: ...
