"""Windowed aggregation helpers (§3.2).

The paper gives "a window of the most recent stream data" as the canonical
example of task state, and the §5.1 site-speed use case groups client events
"per session".  These helpers implement the three standard window types over
event time, as plain data structures a task embeds in its state:

* :class:`TumblingWindow` — fixed, non-overlapping buckets;
* :class:`SlidingWindow` — fixed length, sliding by a smaller step;
* :class:`SessionWindow` — gap-based sessionization (RUM sessions).

All are keyed: each key (user, CDN, page, ...) aggregates independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generic, Hashable, TypeVar

from repro.common.errors import ConfigError

A = TypeVar("A")  # accumulator type


@dataclass
class WindowResult(Generic[A]):
    """A closed window ready for emission."""

    key: Hashable
    window_start: float
    window_end: float
    value: A
    count: int


class TumblingWindow(Generic[A]):
    """Fixed-size, non-overlapping, per-key windows over event time.

    ``add`` returns any windows that *closed* because the new event's
    timestamp moved past their end (per-key watermark semantics: events are
    assumed in order per key, as guaranteed by per-partition log order for
    keyed topics).
    """

    def __init__(
        self,
        size: float,
        init: Callable[[], A],
        fold: Callable[[A, Any], A],
    ) -> None:
        if size <= 0:
            raise ConfigError("window size must be > 0")
        self.size = size
        self.init = init
        self.fold = fold
        # key -> (window_start, accumulator, count)
        self._open: dict[Hashable, tuple[float, A, int]] = {}

    def _bucket(self, timestamp: float) -> float:
        return (timestamp // self.size) * self.size

    def add(self, key: Hashable, timestamp: float, event: Any) -> list[WindowResult[A]]:
        closed: list[WindowResult[A]] = []
        bucket = self._bucket(timestamp)
        current = self._open.get(key)
        if current is not None and current[0] != bucket:
            start, acc, count = current
            closed.append(WindowResult(key, start, start + self.size, acc, count))
            current = None
        if current is None:
            current = (bucket, self.init(), 0)
        start, acc, count = current
        self._open[key] = (start, self.fold(acc, event), count + 1)
        return closed

    def flush(self) -> list[WindowResult[A]]:
        """Close and emit every open window (end of stream / timer)."""
        out = [
            WindowResult(key, start, start + self.size, acc, count)
            for key, (start, acc, count) in self._open.items()
        ]
        self._open.clear()
        return out

    def open_windows(self) -> int:
        return len(self._open)


class SlidingWindow(Generic[A]):
    """Fixed-length window sliding by ``step`` (< size ⇒ overlapping).

    Implemented as ``size/step`` tumbling panes per key; a closed window is
    the fold over the panes it covers.
    """

    def __init__(
        self,
        size: float,
        step: float,
        init: Callable[[], A],
        fold: Callable[[A, Any], A],
        merge: Callable[[A, A], A],
    ) -> None:
        if size <= 0 or step <= 0:
            raise ConfigError("size and step must be > 0")
        if size % step != 0:
            raise ConfigError("size must be a multiple of step")
        self.size = size
        self.step = step
        self.init = init
        self.fold = fold
        self.merge = merge
        # key -> {pane_start: (accumulator, count)}
        self._panes: dict[Hashable, dict[float, tuple[A, int]]] = {}
        self._watermark: dict[Hashable, float] = {}

    def add(self, key: Hashable, timestamp: float, event: Any) -> list[WindowResult[A]]:
        pane_start = (timestamp // self.step) * self.step
        panes = self._panes.setdefault(key, {})
        acc, count = panes.get(pane_start, (self.init(), 0))
        panes[pane_start] = (self.fold(acc, event), count + 1)
        closed: list[WindowResult[A]] = []
        previous = self._watermark.get(key)
        if previous is not None and pane_start > previous:
            # Windows ending in (previous, pane_start] are complete.
            end = previous + self.step
            while end <= pane_start:
                result = self._assemble(key, end)
                if result is not None:
                    closed.append(result)
                end += self.step
            self._expire(key, pane_start)
        self._watermark[key] = max(self._watermark.get(key, pane_start), pane_start)
        return closed

    def _assemble(self, key: Hashable, window_end: float) -> WindowResult[A] | None:
        window_start = window_end - self.size
        panes = self._panes.get(key, {})
        acc: A | None = None
        count = 0
        start = window_start
        while start < window_end:
            pane = panes.get(start)
            if pane is not None:
                acc = pane[0] if acc is None else self.merge(acc, pane[0])
                count += pane[1]
            start += self.step
        if acc is None:
            return None
        return WindowResult(key, window_start, window_end, acc, count)

    def _expire(self, key: Hashable, newest_pane: float) -> None:
        horizon = newest_pane - self.size
        panes = self._panes.get(key, {})
        for pane_start in [p for p in panes if p < horizon]:
            del panes[pane_start]


class SessionWindow(Generic[A]):
    """Gap-based sessions: a session closes after ``gap`` of inactivity."""

    def __init__(
        self,
        gap: float,
        init: Callable[[], A],
        fold: Callable[[A, Any], A],
    ) -> None:
        if gap <= 0:
            raise ConfigError("session gap must be > 0")
        self.gap = gap
        self.init = init
        self.fold = fold
        # key -> (session_start, last_event_ts, accumulator, count)
        self._open: dict[Hashable, tuple[float, float, A, int]] = {}

    def add(self, key: Hashable, timestamp: float, event: Any) -> list[WindowResult[A]]:
        closed: list[WindowResult[A]] = []
        current = self._open.get(key)
        if current is not None and timestamp - current[1] > self.gap:
            start, last, acc, count = current
            closed.append(WindowResult(key, start, last, acc, count))
            current = None
        if current is None:
            current = (timestamp, timestamp, self.init(), 0)
        start, _last, acc, count = current
        self._open[key] = (start, timestamp, self.fold(acc, event), count + 1)
        return closed

    def expire_idle(self, now: float) -> list[WindowResult[A]]:
        """Close sessions idle longer than the gap as of ``now`` (timer)."""
        closed = []
        for key in [k for k, (_s, last, _a, _c) in self._open.items() if now - last > self.gap]:
            start, last, acc, count = self._open.pop(key)
            closed.append(WindowResult(key, start, last, acc, count))
        return closed

    def open_sessions(self) -> int:
        return len(self._open)
