"""Local key-value stores for stateful tasks (§3.2, §4.4).

"Stateful jobs access state locally for efficiency.  State can be
represented as arbitrary data structures, e.g. a window of the most recent
stream data, a dictionary of statistics or an inverted index."  At LinkedIn
the store is RocksDB, chosen to keep state off the JVM heap; here we
reproduce its *shape* — a log-structured merge store with an in-memory
memtable and immutable sorted runs — because that shape is what interacts
with changelogs and compaction, while the GC motivation is moot in Python
(noted in DESIGN.md).

Two implementations share the :class:`KeyValueStore` interface:

* :class:`InMemoryStore` — plain dict; zero-cost, for tests and small state;
* :class:`LsmStore` — memtable + sorted runs with simulated probe costs from
  the cost model, including run compaction.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterator, Protocol, runtime_checkable

from repro.common.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.common.errors import ConfigError, StateStoreError
from repro.common.records import estimate_size

#: Sentinel distinguishing "key absent" from "key stored with value None".
_MISSING = object()


def _range_filter(
    items: Iterator[tuple[Any, Any]], start: Any, end: Any
) -> Iterator[tuple[Any, Any]]:
    """Filter an already-sort-key-ordered item stream to [start, end).

    Bounds are compared in the stores' native order — the ``repr`` of the
    key — so range semantics are identical for every store implementation
    (and for arbitrary hashable keys).  ``None`` means unbounded.
    """
    start_key = None if start is None else repr(start)
    end_key = None if end is None else repr(end)
    for key, value in items:
        sort_key = repr(key)
        if start_key is not None and sort_key < start_key:
            continue
        if end_key is not None and sort_key >= end_key:
            break
        yield key, value


@runtime_checkable
class KeyValueStore(Protocol):
    """Interface every task-local store implements."""

    def get(self, key: Any) -> Any: ...

    def put(self, key: Any, value: Any) -> None: ...

    def delete(self, key: Any) -> None: ...

    def __contains__(self, key: Any) -> bool: ...

    def items(self) -> Iterator[tuple[Any, Any]]: ...

    def range_items(
        self, start: Any = None, end: Any = None
    ) -> Iterator[tuple[Any, Any]]: ...

    def __len__(self) -> int: ...

    def approximate_size_bytes(self) -> int: ...

    def clear(self) -> None: ...


class InMemoryStore:
    """Dict-backed store; the zero-overhead baseline."""

    def __init__(self) -> None:
        self._data: dict[Any, Any] = {}

    def get(self, key: Any) -> Any:
        return self._data.get(key)

    def put(self, key: Any, value: Any) -> None:
        self._data[key] = value

    def delete(self, key: Any) -> None:
        self._data.pop(key, None)

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def items(self) -> Iterator[tuple[Any, Any]]:
        return iter(sorted(self._data.items(), key=lambda kv: repr(kv[0])))

    def range_items(
        self, start: Any = None, end: Any = None
    ) -> Iterator[tuple[Any, Any]]:
        """Live pairs with ``start <= repr(key) < end`` in key-repr order."""
        return _range_filter(self.items(), start, end)

    def __len__(self) -> int:
        return len(self._data)

    def approximate_size_bytes(self) -> int:
        return sum(
            estimate_size(k) + estimate_size(v) + 16 for k, v in self._data.items()
        )

    def clear(self) -> None:
        self._data.clear()


class _SortedRun:
    """An immutable sorted run: (sort_key, key, value) triples."""

    __slots__ = ("entries",)

    def __init__(self, entries: list[tuple[str, Any, Any]]) -> None:
        self.entries = entries  # sorted by sort_key

    def get(self, sort_key: str) -> Any:
        idx = bisect_left(self.entries, sort_key, key=lambda e: e[0])
        if idx < len(self.entries) and self.entries[idx][0] == sort_key:
            return self.entries[idx][2]
        return _MISSING

    def __len__(self) -> int:
        return len(self.entries)


class LsmStore:
    """Log-structured merge store with simulated probe costs.

    Keys are ordered by ``repr`` so arbitrary hashable keys work; tombstones
    (deleted keys) are retained in runs until a full compaction merges them
    away — the same mechanics that make log compaction (E4) effective on the
    store's changelog.

    ``last_op_cost`` exposes the simulated cost of the most recent operation
    so the task runner can charge it to the job's CPU/IO budget.
    """

    def __init__(
        self,
        memtable_max_entries: int = 1000,
        max_runs: int = 4,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ) -> None:
        if memtable_max_entries <= 0:
            raise ConfigError("memtable_max_entries must be > 0")
        if max_runs <= 0:
            raise ConfigError("max_runs must be > 0")
        self.memtable_max_entries = memtable_max_entries
        self.max_runs = max_runs
        self.cost_model = cost_model
        self._memtable: dict[str, tuple[Any, Any]] = {}  # sort_key -> (key, value)
        self._runs: list[_SortedRun] = []  # newest first
        self.last_op_cost = 0.0
        self.flushes = 0
        self.compactions = 0

    @staticmethod
    def _sort_key(key: Any) -> str:
        return repr(key)

    # -- point ops ---------------------------------------------------------------

    def get(self, key: Any) -> Any:
        sort_key = self._sort_key(key)
        cost = self.cost_model.store_memtable_get
        entry = self._memtable.get(sort_key)
        if entry is not None:
            self.last_op_cost = cost
            value = entry[1]
            return None if value is _MISSING else value
        for run in self._runs:
            cost += self.cost_model.store_run_get
            value = run.get(sort_key)
            if value is not _MISSING:
                self.last_op_cost = cost
                # A tombstone is stored as None, which is also the "absent"
                # return convention, so it can be returned directly.
                return value
        self.last_op_cost = cost
        return None

    def put(self, key: Any, value: Any) -> None:
        if value is None:
            raise StateStoreError(
                "LsmStore cannot store None (reserved for tombstones); "
                "use delete() instead"
            )
        self._memtable[self._sort_key(key)] = (key, value)
        self.last_op_cost = self.cost_model.store_put
        self._maybe_flush()

    def delete(self, key: Any) -> None:
        self._memtable[self._sort_key(key)] = (key, _MISSING)
        self.last_op_cost = self.cost_model.store_put
        self._maybe_flush()

    def __contains__(self, key: Any) -> bool:
        sort_key = self._sort_key(key)
        entry = self._memtable.get(sort_key)
        if entry is not None:
            return entry[1] is not _MISSING
        for run in self._runs:
            value = run.get(sort_key)
            if value is not _MISSING:
                return value is not None
        return False

    # -- flush / compaction ----------------------------------------------------------

    def _maybe_flush(self) -> None:
        if len(self._memtable) >= self.memtable_max_entries:
            self.flush_memtable()

    def flush_memtable(self) -> None:
        """Freeze the memtable into a new sorted run."""
        if not self._memtable:
            return
        entries = sorted(
            (sort_key, key, None if value is _MISSING else value)
            for sort_key, (key, value) in self._memtable.items()
        )
        self._runs.insert(0, _SortedRun(entries))
        self._memtable = {}
        self.flushes += 1
        if len(self._runs) > self.max_runs:
            self.compact()

    def compact(self) -> None:
        """Merge all runs into one, dropping tombstones and shadowed values."""
        merged: dict[str, tuple[Any, Any]] = {}
        for run in reversed(self._runs):  # oldest first; newer overwrites
            for sort_key, key, value in run.entries:
                merged[sort_key] = (key, value)
        survivors = sorted(
            (sort_key, key, value)
            for sort_key, (key, value) in merged.items()
            if value is not None
        )
        self._runs = [_SortedRun(survivors)] if survivors else []
        self.compactions += 1

    # -- scans ------------------------------------------------------------------------

    def items(self) -> Iterator[tuple[Any, Any]]:
        """All live (key, value) pairs in key-repr order."""
        merged: dict[str, tuple[Any, Any]] = {}
        for run in reversed(self._runs):
            for sort_key, key, value in run.entries:
                merged[sort_key] = (key, value)
        for sort_key, (key, value) in self._memtable.items():
            merged[sort_key] = (key, None if value is _MISSING else value)
        for sort_key in sorted(merged):
            key, value = merged[sort_key]
            if value is not None:
                yield key, value

    def range_items(
        self, start: Any = None, end: Any = None
    ) -> Iterator[tuple[Any, Any]]:
        """Live pairs with ``start <= repr(key) < end`` in key-repr order."""
        return _range_filter(self.items(), start, end)

    def scan_cost(self) -> float:
        """Simulated cost of one scan pass: memtable plus every run probe."""
        return (
            self.cost_model.store_memtable_get
            + self.cost_model.store_run_get * len(self._runs)
        )

    def __len__(self) -> int:
        return sum(1 for _ in self.items())

    def approximate_size_bytes(self) -> int:
        total = 0
        for sort_key, (key, value) in self._memtable.items():
            total += estimate_size(key) + estimate_size(value) + 16
        for run in self._runs:
            for _sort_key, key, value in run.entries:
                total += estimate_size(key) + estimate_size(value) + 16
        return total

    def clear(self) -> None:
        self._memtable.clear()
        self._runs.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LsmStore(memtable={len(self._memtable)}, runs={len(self._runs)})"
        )


#: Store factories by name for config-driven construction.
STORE_TYPES = {
    "memory": InMemoryStore,
    "lsm": LsmStore,
}


def make_store(store_type: str, **kwargs: Any) -> KeyValueStore:
    """Construct a store by type name (``"memory"`` or ``"lsm"``)."""
    factory = STORE_TYPES.get(store_type)
    if factory is None:
        raise ConfigError(
            f"unknown store type {store_type!r}; known: {sorted(STORE_TYPES)}"
        )
    return factory(**kwargs)
