"""Explicit task state with changelog-backed durability (§3.2).

"Our solution is for the processing layer to publish state updates to a
changelog, which is a derived feed stored by the messaging layer.  After
failure, state is reconstructed from the changelog."

:class:`KeyValueState` wraps a local :class:`~repro.processing.store.KeyValueStore`
and write-through-publishes every mutation to a *compacted* changelog topic
in the messaging layer.  Because the changelog is keyed by the state key,
compaction (§4.1) bounds its size by the number of live keys, which is what
makes recovery fast (E4).
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.common.errors import StateStoreError
from repro.processing.store import KeyValueStore


def changelog_topic_name(job_name: str, store_name: str) -> str:
    """Canonical changelog topic for a job's store (Samza convention)."""
    return f"__changelog-{job_name}-{store_name}"


class KeyValueState:
    """A named state store owned by one task, optionally changelogged.

    ``changelog_append`` is injected by the job runner: it publishes
    ``(key, value)`` to the task's changelog partition.  When ``None`` the
    state is transient (lost on failure) — the ablation mode used to show
    why changelogs matter.
    """

    def __init__(
        self,
        name: str,
        store: KeyValueStore,
        changelog_append=None,
    ) -> None:
        self.name = name
        self.store = store
        self._changelog_append = changelog_append
        self.puts = 0
        self.gets = 0
        self.deletes = 0

    # -- mutation (write-through to changelog) -------------------------------------

    def put(self, key: Any, value: Any) -> None:
        if value is None:
            raise StateStoreError(
                f"state {self.name!r}: None values are reserved for deletes"
            )
        self.store.put(key, value)
        self.puts += 1
        if self._changelog_append is not None:
            self._changelog_append(key, value)

    def delete(self, key: Any) -> None:
        self.store.delete(key)
        self.deletes += 1
        if self._changelog_append is not None:
            self._changelog_append(key, None)  # tombstone

    def get(self, key: Any) -> Any:
        self.gets += 1
        return self.store.get(key)

    def get_or_default(self, key: Any, default: Any) -> Any:
        value = self.get(key)
        return value if value is not None else default

    def __contains__(self, key: Any) -> bool:
        return key in self.store

    def items(self) -> Iterator[tuple[Any, Any]]:
        return self.store.items()

    def range(self, start: Any = None, end: Any = None) -> Iterator[tuple[Any, Any]]:
        """Live pairs with ``start <= repr(key) < end`` in key-repr order."""
        return self.store.range_items(start, end)

    def __len__(self) -> int:
        return len(self.store)

    def approximate_size_bytes(self) -> int:
        return self.store.approximate_size_bytes()

    # -- recovery -----------------------------------------------------------------------

    def restore_entry(self, key: Any, value: Any) -> None:
        """Apply one changelog record during recovery (no re-publication)."""
        if value is None:
            self.store.delete(key)
        else:
            self.store.put(key, value)

    def clear(self) -> None:
        self.store.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        logged = "changelogged" if self._changelog_append else "transient"
        return f"KeyValueState({self.name!r}, {len(self.store)} keys, {logged})"
