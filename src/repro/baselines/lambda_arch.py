"""The Lambda architecture (§2.2), built from our own substrates.

"input data is sent to both an offline and an online processing system.
Both systems execute the same processing logic and output results to a
service layer ... developers must write, debug, and maintain the same
processing code for both the batch and stream layers, and the Lambda
architecture increases the hardware footprint."

The implementation makes the paper's criticisms measurable (E7):

* the same ``algorithm`` must be *registered twice* — once as a map/reduce
  pair for the batch layer, once as a streaming fold — and
  :attr:`code_paths` counts the implementations that must be kept in sync;
* every event is stored twice (DFS master dataset + stream log):
  :meth:`storage_bytes` exposes the footprint;
* the batch view is stale by design between recomputes: :meth:`staleness`
  reports the age of the data it reflects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.common.clock import Clock, SimClock
from repro.common.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.common.errors import ConfigError
from repro.common.records import TopicPartition
from repro.baselines.dfs import SimulatedDFS
from repro.baselines.mapreduce import MapReduceEngine, MRJobSpec
from repro.messaging.cluster import MessagingCluster
from repro.messaging.producer import Producer

#: A streaming fold: (view, event) -> None, mutating the view in place.
StreamUpdate = Callable[[dict[Any, Any], Any], None]
#: A batch map: event -> iterable of (key, contribution).
BatchMap = Callable[[Any], Iterable[tuple[Any, Any]]]
#: A batch reduce: (key, contributions) -> aggregated value.
BatchReduce = Callable[[Any, list[Any]], Any]


@dataclass
class LambdaMetrics:
    """Costs E7 compares across architectures."""

    code_paths: int
    batch_compute_seconds: float
    speed_compute_seconds: float
    storage_bytes: int
    batch_view_age: float


class LambdaArchitecture:
    """Batch layer (MR/DFS) + speed layer (stream) + merged serving layer."""

    def __init__(
        self,
        clock: Clock | None = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        num_brokers: int = 1,
        ingest_batch_size: int = 500,
    ) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.cost_model = cost_model
        # Two separate systems — the doubled hardware footprint.
        self.dfs = SimulatedDFS(self.clock, cost_model)
        self.mr = MapReduceEngine(self.dfs, self.clock, cost_model)
        self.stream = MessagingCluster(
            num_brokers=num_brokers, clock=self.clock, cost_model=cost_model
        )
        self.stream.create_topic("events", num_partitions=1)
        self._producer = Producer(self.stream)
        self._ingest_batch_size = ingest_batch_size
        self._staging: list[Any] = []
        self._part_counter = 0
        # Serving layer.
        self.batch_view: dict[Any, Any] = {}
        self.realtime_view: dict[Any, Any] = {}
        self._speed_position = 0
        self._batch_covers_until = 0  # stream offset covered by the batch view
        self._batch_view_built_at = 0.0
        # The duplicated logic.
        self._stream_update: StreamUpdate | None = None
        self._batch_map: BatchMap | None = None
        self._batch_reduce: BatchReduce | None = None
        self.code_paths = 0
        self.batch_compute_seconds = 0.0
        self.speed_compute_seconds = 0.0

    # -- logic registration (twice!) ---------------------------------------------------

    def register_stream_logic(self, update: StreamUpdate) -> None:
        """Register the speed-layer implementation of the algorithm."""
        if self._stream_update is None:
            self.code_paths += 1
        self._stream_update = update

    def register_batch_logic(self, map_fn: BatchMap, reduce_fn: BatchReduce) -> None:
        """Register the batch-layer implementation of the *same* algorithm."""
        if self._batch_map is None:
            self.code_paths += 1
        self._batch_map = map_fn
        self._batch_reduce = reduce_fn

    def _require_logic(self) -> None:
        if self._stream_update is None or self._batch_map is None:
            raise ConfigError(
                "Lambda requires BOTH stream and batch implementations "
                "registered before processing"
            )

    # -- ingestion (dual write) -----------------------------------------------------------

    def ingest(self, events: list[Any]) -> None:
        """Every event goes to both systems: DFS master dataset + stream."""
        self._staging.extend(events)
        while len(self._staging) >= self._ingest_batch_size:
            chunk, self._staging = (
                self._staging[: self._ingest_batch_size],
                self._staging[self._ingest_batch_size :],
            )
            self._flush_chunk(chunk)
        for event in events:
            self._producer.send("events", event)

    def _flush_chunk(self, chunk: list[Any]) -> None:
        path = f"/master/part-{self._part_counter:05d}"
        self._part_counter += 1
        self.dfs.write_file(path, chunk)

    def flush_staging(self) -> None:
        if self._staging:
            chunk, self._staging = self._staging, []
            self._flush_chunk(chunk)

    # -- speed layer ------------------------------------------------------------------------

    def run_speed_layer(self) -> int:
        """Fold new stream records into the realtime view; returns #records."""
        self._require_logic()
        assert self._stream_update is not None
        self.stream.tick(0.0)
        processed = 0
        tp = TopicPartition("events", 0)
        end = self.stream.end_offset(tp)
        while self._speed_position < end:
            records, latency = self.stream.fetch(
                "events", 0, self._speed_position, 500
            )
            if not records:
                break
            for record in records:
                self._stream_update(self.realtime_view, record.value)
                latency += self.cost_model.cpu_per_message
            processed += len(records)
            self._speed_position = records[-1].offset + 1
            self.speed_compute_seconds += latency
            if isinstance(self.clock, SimClock):
                self.clock.advance(latency)
        return processed

    # -- batch layer -------------------------------------------------------------------------

    def run_batch_layer(self) -> float:
        """Recompute the batch view from the full master dataset via MR.

        Returns the job's simulated duration.  The realtime view is reset for
        the data the new batch view covers (standard Lambda bookkeeping).
        """
        self._require_logic()
        assert self._batch_map is not None and self._batch_reduce is not None
        self.flush_staging()
        batch_reduce = self._batch_reduce

        def reduce_to_pairs(key: Any, values: list[Any]) -> Iterable[Any]:
            yield (key, batch_reduce(key, values))

        spec = MRJobSpec(
            name="lambda-batch",
            input_paths=["/master"],
            output_path="/views/batch",
            map_fn=self._batch_map,
            reduce_fn=reduce_to_pairs,
        )
        result = self.mr.run(spec)
        self.batch_compute_seconds += result.total_seconds
        output = self.dfs.read_file("/views/batch/part-00000")
        self.batch_view = dict(output.records)
        # The batch view now covers everything ingested before the job ran.
        self._batch_covers_until = self._speed_position
        self.realtime_view = {}
        self._batch_view_built_at = self.clock.now()
        return result.total_seconds

    # -- serving layer ------------------------------------------------------------------------

    def query(self, key: Any, merge: Callable[[Any, Any], Any] | None = None) -> Any:
        """Merge batch and realtime views (sum by default for numerics)."""
        batch = self.batch_view.get(key)
        realtime = self.realtime_view.get(key)
        if batch is None:
            return realtime
        if realtime is None:
            return batch
        if merge is not None:
            return merge(batch, realtime)
        return batch + realtime

    # -- metrics (E7) -----------------------------------------------------------------------------

    def storage_bytes(self) -> int:
        """Both copies of the data: DFS master dataset + stream log."""
        log_bytes = self.stream.stats()["stored_bytes"]
        return self.dfs.total_stored_bytes() + log_bytes

    def staleness(self) -> float:
        """Age of the data reflected in the batch view."""
        return self.clock.now() - self._batch_view_built_at

    def metrics(self) -> LambdaMetrics:
        return LambdaMetrics(
            code_paths=self.code_paths,
            batch_compute_seconds=self.batch_compute_seconds,
            speed_compute_seconds=self.speed_compute_seconds,
            storage_bytes=self.storage_bytes(),
            batch_view_age=self.staleness(),
        )
