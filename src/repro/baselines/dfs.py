"""A simulated distributed file system (GFS/HDFS stand-in).

The paper's foil: "the storage layer uses a DFS to store data in a
cost-effective way ... the coarse-grained data access of a MR/DFS stack is
only appropriate for batch-oriented processing."

The simulation reproduces the *structural* properties the paper criticizes:

* files are immutable once closed — new data means new files, and updates
  mean rewriting;
* access is coarse-grained: the unit of I/O is the block (64 MB by
  default), and every open pays a namenode round trip;
* there is no notion of offsets, subscriptions, or incremental reads — a
  consumer wanting "what's new" must list the directory and re-read.

Latency is charged through the same cost model as the messaging layer, so
E1/E2 comparisons are apples-to-apples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.common.clock import Clock, SimClock
from repro.common.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.common.errors import ConfigError, FileExistsInDfsError, FileNotFoundInDfsError
from repro.common.records import estimate_size


@dataclass
class DfsFile:
    """An immutable, block-replicated file."""

    path: str
    records: list[Any]
    size_bytes: int
    num_blocks: int
    replication: int
    created_at: float


@dataclass
class DfsOpResult:
    """Outcome of a DFS operation with its simulated latency."""

    latency: float
    records: list[Any] = field(default_factory=list)
    bytes_moved: int = 0


class SimulatedDFS:
    """Namenode + block storage with replication, as one object."""

    def __init__(
        self,
        clock: Clock | None = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        replication: int = 3,
    ) -> None:
        if replication <= 0:
            raise ConfigError("replication must be > 0")
        self.clock = clock if clock is not None else SimClock()
        self.cost_model = cost_model
        self.replication = replication
        self._files: dict[str, DfsFile] = {}
        self.total_bytes_written = 0
        self.total_bytes_read = 0

    # -- write path ---------------------------------------------------------------------

    def write_file(self, path: str, records: list[Any]) -> DfsOpResult:
        """Create an immutable file from ``records``.

        Cost: namenode create + per-block (seek + sequential write) on the
        primary, plus the pipeline transfer to ``replication - 1`` replicas.
        """
        self._validate_path(path)
        if path in self._files:
            raise FileExistsInDfsError(path)
        size = sum(estimate_size(r) + 16 for r in records)
        num_blocks = max(1, math.ceil(size / self.cost_model.dfs_block_size))
        latency = self.cost_model.dfs_open_overhead
        latency += num_blocks * self.cost_model.disk_seek_time
        latency += self.cost_model.disk_sequential_write(size)
        # Replication pipeline: data crosses the wire once per extra replica,
        # but replicas write in parallel, so only the transfer serializes.
        latency += (self.replication - 1) * self.cost_model.network_transfer(size)
        self._files[path] = DfsFile(
            path=path,
            records=list(records),
            size_bytes=size,
            num_blocks=num_blocks,
            replication=self.replication,
            created_at=self.clock.now(),
        )
        stored = size * self.replication
        self.total_bytes_written += stored
        return DfsOpResult(latency=latency, bytes_moved=stored)

    def overwrite_file(self, path: str, records: list[Any]) -> DfsOpResult:
        """Delete-and-rewrite (the DFS 'update'): full cost every time."""
        if path in self._files:
            self.delete(path)
        return self.write_file(path, records)

    # -- read path ----------------------------------------------------------------------

    def read_file(self, path: str) -> DfsOpResult:
        """Read a whole file (the only read granularity below a block).

        Cost: namenode open + per-block seek + sequential read of all bytes.
        """
        dfs_file = self._require(path)
        latency = self.cost_model.dfs_open_overhead
        latency += dfs_file.num_blocks * self.cost_model.disk_seek_time
        latency += self.cost_model.disk_sequential_read(dfs_file.size_bytes)
        self.total_bytes_read += dfs_file.size_bytes
        return DfsOpResult(
            latency=latency,
            records=list(dfs_file.records),
            bytes_moved=dfs_file.size_bytes,
        )

    def read_dir(self, prefix: str) -> DfsOpResult:
        """Read every file under a directory prefix, concatenated.

        This is how a batch consumer gets "the topic": list + read all, with
        no way to skip already-seen data — the coarse-grained access E3's
        full-recompute baseline pays.
        """
        result = DfsOpResult(latency=self.cost_model.dfs_open_overhead)
        for path in self.list_dir(prefix):
            one = self.read_file(path)
            result.latency += one.latency
            result.records.extend(one.records)
            result.bytes_moved += one.bytes_moved
        return result

    # -- namespace ------------------------------------------------------------------------

    def exists(self, path: str) -> bool:
        return path in self._files

    def delete(self, path: str) -> None:
        self._require(path)
        del self._files[path]

    def list_dir(self, prefix: str) -> list[str]:
        """Paths under ``prefix``, sorted (creation order == name order by
        convention: callers use zero-padded part numbers)."""
        normalized = prefix.rstrip("/") + "/"
        return sorted(p for p in self._files if p.startswith(normalized))

    def file_size(self, path: str) -> int:
        return self._require(path).size_bytes

    def total_stored_bytes(self) -> int:
        """Bytes on disk including replication."""
        return sum(f.size_bytes * f.replication for f in self._files.values())

    def _require(self, path: str) -> DfsFile:
        dfs_file = self._files.get(path)
        if dfs_file is None:
            raise FileNotFoundInDfsError(path)
        return dfs_file

    @staticmethod
    def _validate_path(path: str) -> None:
        if not path.startswith("/") or path.endswith("/"):
            raise ConfigError(f"invalid DFS path {path!r}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimulatedDFS(files={len(self._files)})"
