"""The Kappa architecture (§2.2), built from our messaging layer.

"a single nearline system, e.g. a stream processing platform, processes the
input data.  To re-process data, a new job starts in parallel to an existing
one.  It re-processes the data from scratch and outputs the results to a
service layer.  After the job has finished, back-end systems read the data
loaded by the new job ... This approach only requires a single processing
path, but it has a higher storage footprint, and applications access stale
data while the system is re-processing data."

Measurable consequences for E7:

* :attr:`code_paths` is 1 (the advantage over Lambda);
* the log must retain *all* history to allow from-scratch reprocessing —
  :meth:`storage_bytes` includes it;
* during :meth:`reprocess`, queries keep hitting the *old* algorithm's view:
  :attr:`last_staleness_window` records for how long (simulated) the new
  algorithm's results were unavailable after the cutover began.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.common.clock import Clock, SimClock
from repro.common.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.common.errors import ConfigError
from repro.common.records import TopicPartition
from repro.messaging.cluster import MessagingCluster
from repro.messaging.producer import Producer

StreamUpdate = Callable[[dict[Any, Any], Any], None]


@dataclass
class KappaMetrics:
    """Costs E7 compares across architectures."""

    code_paths: int
    compute_seconds: float
    reprocess_seconds: float
    storage_bytes: int
    last_staleness_window: float


class KappaArchitecture:
    """One stream path; reprocessing = replay into a parallel view."""

    def __init__(
        self,
        clock: Clock | None = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        num_brokers: int = 1,
    ) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.cost_model = cost_model
        self.stream = MessagingCluster(
            num_brokers=num_brokers, clock=self.clock, cost_model=cost_model
        )
        # Infinite retention: reprocessability requires the whole history.
        self.stream.create_topic("events", num_partitions=1)
        self._producer = Producer(self.stream)
        self._update: StreamUpdate | None = None
        self.version = "v0"
        self.view: dict[Any, Any] = {}
        self._position = 0
        self.code_paths = 0
        self.compute_seconds = 0.0
        self.reprocess_seconds = 0.0
        self.last_staleness_window = 0.0

    # -- logic registration (once) -----------------------------------------------------

    def register_logic(self, update: StreamUpdate, version: str) -> None:
        """Register THE implementation (single code path)."""
        if self._update is None:
            self.code_paths = 1
        self._update = update
        self.version = version

    # -- ingestion ------------------------------------------------------------------------

    def ingest(self, events: list[Any]) -> None:
        for event in events:
            self._producer.send("events", event)

    # -- nearline processing ------------------------------------------------------------------

    def process(self) -> int:
        """Fold new records into the active view; returns #records."""
        if self._update is None:
            raise ConfigError("register_logic before processing")
        self.stream.tick(0.0)
        processed, latency = self._fold_range(
            self.view, self._position, self.stream.end_offset(self._tp())
        )
        self._position += processed
        self.compute_seconds += latency
        if isinstance(self.clock, SimClock):
            self.clock.advance(latency)
        return processed

    def _tp(self) -> TopicPartition:
        return TopicPartition("events", 0)

    def _fold_range(
        self, view: dict[Any, Any], start: int, end: int
    ) -> tuple[int, float]:
        assert self._update is not None
        processed = 0
        latency = 0.0
        position = start
        while position < end:
            records, fetch_latency = self.stream.fetch("events", 0, position, 500)
            if not records:
                break
            latency += fetch_latency
            for record in records:
                self._update(view, record.value)
                latency += self.cost_model.cpu_per_message
            processed += len(records)
            position = records[-1].offset + 1
        return processed, latency

    # -- reprocessing (the Kappa move) ------------------------------------------------------------

    def reprocess(self, update: StreamUpdate, version: str) -> float:
        """Deploy new logic by replaying the whole log into a fresh view.

        The old view keeps serving until the new job catches up; the
        simulated duration of that window is recorded as
        :attr:`last_staleness_window`.  Returns it.
        """
        started_at = self.clock.now()
        old_update = self._update
        self._update = update
        new_view: dict[Any, Any] = {}
        self.stream.tick(0.0)
        end = self.stream.end_offset(self._tp())
        processed, latency = self._fold_range(new_view, 0, end)
        self.reprocess_seconds += latency
        if isinstance(self.clock, SimClock):
            self.clock.advance(latency)
        # Catch up anything ingested while reprocessing ran.
        self.stream.tick(0.0)
        tail, tail_latency = self._fold_range(
            new_view, end, self.stream.end_offset(self._tp())
        )
        self.reprocess_seconds += tail_latency
        if isinstance(self.clock, SimClock):
            self.clock.advance(tail_latency)
        # Cutover.
        self.view = new_view
        self._position = end + tail
        self.version = version
        self.last_staleness_window = self.clock.now() - started_at
        del old_update
        return self.last_staleness_window

    # -- serving ---------------------------------------------------------------------------------------

    def query(self, key: Any) -> Any:
        return self.view.get(key)

    # -- metrics (E7) -------------------------------------------------------------------------------------

    def storage_bytes(self) -> int:
        """The fully-retained log (reprocessability has a storage price)."""
        return int(self.stream.stats()["stored_bytes"])

    def metrics(self) -> KappaMetrics:
        return KappaMetrics(
            code_paths=self.code_paths,
            compute_seconds=self.compute_seconds,
            reprocess_seconds=self.reprocess_seconds,
            storage_bytes=self.storage_bytes(),
            last_staleness_window=self.last_staleness_window,
        )
