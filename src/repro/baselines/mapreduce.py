"""A MapReduce engine over the simulated DFS (the paper's legacy stack).

"Today's data integration stacks are frequently based on a MapReduce model —
they run custom ETL-like MR jobs on commodity shared-nothing clusters with
scalable distributed file systems ... Intermediate results of MR jobs are
written to the DFS, resulting in higher latencies as job pipelines grow in
length."

The engine reproduces the cost structure behind that sentence:

* fixed *job startup* (YARN negotiation, JVM spin-up) per job;
* map tasks read whole input files (coarse-grained);
* intermediate results are **materialized** (local disk write + shuffle
  transfer + reducer-side read);
* reducer output is written back to the DFS, replicated;
* a pipeline of N jobs pays all of it N times (E2's baseline curve).

Map/reduce parallelism divides the data-proportional costs but not the fixed
ones, which is exactly why short nearline jobs are dominated by overhead.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.common.clock import Clock, SimClock
from repro.common.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.common.errors import ConfigError, MapReduceError
from repro.common.records import estimate_size
from repro.baselines.dfs import SimulatedDFS

MapFn = Callable[[Any], Iterable[tuple[Any, Any]]]
ReduceFn = Callable[[Any, list[Any]], Iterable[Any]]


@dataclass(frozen=True)
class MRJobSpec:
    """One MapReduce job: input dir(s) → map → shuffle → reduce → output dir."""

    name: str
    input_paths: tuple[str, ...] | list[str]
    output_path: str
    map_fn: MapFn
    reduce_fn: ReduceFn
    combiner: ReduceFn | None = None

    def __post_init__(self) -> None:
        if not self.input_paths:
            raise ConfigError(f"MR job {self.name!r} has no inputs")


@dataclass
class MRJobResult:
    """Outcome and simulated cost breakdown of one MR job."""

    records_in: int = 0
    records_out: int = 0
    startup_seconds: float = 0.0
    map_seconds: float = 0.0
    shuffle_seconds: float = 0.0
    reduce_seconds: float = 0.0
    output_write_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return (
            self.startup_seconds
            + self.map_seconds
            + self.shuffle_seconds
            + self.reduce_seconds
            + self.output_write_seconds
        )


class MapReduceEngine:
    """Executes MR jobs and pipelines against a :class:`SimulatedDFS`."""

    def __init__(
        self,
        dfs: SimulatedDFS,
        clock: Clock | None = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        map_parallelism: int = 4,
        reduce_parallelism: int = 2,
    ) -> None:
        if map_parallelism <= 0 or reduce_parallelism <= 0:
            raise ConfigError("parallelism must be > 0")
        self.dfs = dfs
        self.clock = clock if clock is not None else dfs.clock
        self.cost_model = cost_model
        self.map_parallelism = map_parallelism
        self.reduce_parallelism = reduce_parallelism

    # -- single job ---------------------------------------------------------------------

    def run(self, spec: MRJobSpec, advance_clock: bool = True) -> MRJobResult:
        """Run one MR job; optionally advance the simulated clock by its
        duration (so downstream jobs see correct wall-clock)."""
        result = MRJobResult()
        result.startup_seconds = (
            self.cost_model.mr_job_startup
            + (self.map_parallelism + self.reduce_parallelism)
            * self.cost_model.mr_task_startup
        )

        # Map phase: read inputs (parallelized), apply map_fn.
        records, read_latency = self._read_inputs(spec)
        result.records_in = len(records)
        map_cpu = len(records) * self.cost_model.cpu_per_message
        intermediate: list[tuple[Any, Any]] = []
        for record in records:
            try:
                intermediate.extend(spec.map_fn(record))
            except Exception as exc:
                raise MapReduceError(
                    f"map_fn of job {spec.name!r} failed: {exc}"
                ) from exc
        result.map_seconds = (read_latency + map_cpu) / self.map_parallelism

        # Optional combiner shrinks the shuffle.
        if spec.combiner is not None:
            intermediate = self._combine(spec, intermediate)

        # Shuffle: materialize intermediate on local disk, transfer to
        # reducers, read back — the per-stage cost the paper calls out.
        inter_bytes = sum(
            estimate_size(k) + estimate_size(v) + 8 for k, v in intermediate
        )
        materialize = self.cost_model.disk_sequential_write(inter_bytes)
        transfer = self.cost_model.network_transfer(inter_bytes)
        reread = self.cost_model.disk_sequential_read(inter_bytes)
        sort_cost = (
            len(intermediate)
            * max(1, math.ceil(math.log2(len(intermediate) + 1)))
            * self.cost_model.cpu_per_message
            / 4
        )
        result.shuffle_seconds = (
            materialize + transfer + reread + sort_cost
        ) / self.reduce_parallelism

        # Reduce phase.
        grouped: dict[Any, list[Any]] = defaultdict(list)
        for key, value in intermediate:
            grouped[key].append(value)
        output: list[Any] = []
        for key in sorted(grouped, key=repr):
            try:
                output.extend(spec.reduce_fn(key, grouped[key]))
            except Exception as exc:
                raise MapReduceError(
                    f"reduce_fn of job {spec.name!r} failed: {exc}"
                ) from exc
        result.reduce_seconds = (
            len(intermediate) * self.cost_model.cpu_per_message
        ) / self.reduce_parallelism
        result.records_out = len(output)

        # Output write: back to the DFS, replicated.
        part = f"{spec.output_path}/part-00000"
        write = self.dfs.overwrite_file(part, output)
        result.output_write_seconds = write.latency

        if advance_clock and isinstance(self.clock, SimClock):
            self.clock.advance(result.total_seconds)
        return result

    def _read_inputs(self, spec: MRJobSpec) -> tuple[list[Any], float]:
        records: list[Any] = []
        latency = 0.0
        for path in spec.input_paths:
            result = self.dfs.read_dir(path)
            records.extend(result.records)
            latency += result.latency
        return records, latency

    def _combine(
        self, spec: MRJobSpec, intermediate: list[tuple[Any, Any]]
    ) -> list[tuple[Any, Any]]:
        grouped: dict[Any, list[Any]] = defaultdict(list)
        for key, value in intermediate:
            grouped[key].append(value)
        combined: list[tuple[Any, Any]] = []
        for key, values in grouped.items():
            assert spec.combiner is not None
            for value in spec.combiner(key, values):
                combined.append((key, value))
        return combined

    # -- pipelines (E2) --------------------------------------------------------------------

    def run_pipeline(
        self, specs: list[MRJobSpec], advance_clock: bool = True
    ) -> list[MRJobResult]:
        """Run jobs sequentially; stage N+1 reads stage N's DFS output.

        End-to-end latency is the sum of per-job totals — each stage pays
        startup and materialization again, which is the curve the Liquid
        pipeline (hops through the log, no startup) is compared against.
        """
        results = []
        for spec in specs:
            results.append(self.run(spec, advance_clock=advance_clock))
        return results
