"""Baseline systems the paper compares against: MR/DFS, Lambda, Kappa."""

from repro.baselines.dfs import DfsFile, DfsOpResult, SimulatedDFS
from repro.baselines.hourglass import HourglassJob, HourglassRunResult
from repro.baselines.kappa_arch import KappaArchitecture, KappaMetrics
from repro.baselines.lambda_arch import LambdaArchitecture, LambdaMetrics
from repro.baselines.mapreduce import (
    MapReduceEngine,
    MRJobResult,
    MRJobSpec,
)

__all__ = [
    "SimulatedDFS",
    "DfsFile",
    "DfsOpResult",
    "MapReduceEngine",
    "MRJobSpec",
    "MRJobResult",
    "LambdaArchitecture",
    "LambdaMetrics",
    "KappaArchitecture",
    "KappaMetrics",
    "HourglassJob",
    "HourglassRunResult",
]
