"""Hourglass-style incremental MapReduce (paper ref [14], §6).

"The incremental processing of continuously-changing data has received
attention in both industry [14 = Hayes & Shah, 'Hourglass: a Library for
Incremental Processing on Hadoop'] and academia ..."

Hourglass makes *MR jobs* incremental: per-key partial aggregates from
previous runs are persisted alongside the output, and a new run maps only
the input part-files that appeared since, then reduces the new partials
together with the saved state.  The data-proportional cost becomes
delta-proportional — but every refresh still pays the fixed MR job startup,
which is exactly why the paper argues incremental processing belongs in the
nearline stack instead (E3 measures all three: full MR recompute, Hourglass
incremental MR, Liquid incremental).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.common.clock import Clock
from repro.common.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.common.errors import ConfigError
from repro.baselines.dfs import SimulatedDFS
from repro.baselines.mapreduce import MapReduceEngine, MRJobSpec

MapFn = Callable[[Any], Iterable[tuple[Any, Any]]]
#: Combines mapped contributions for one key into a partial aggregate.
AggregateFn = Callable[[list[Any]], Any]
#: Merges two partial aggregates of the same key.
MergeFn = Callable[[Any, Any], Any]


@dataclass
class HourglassRunResult:
    """Outcome of one incremental refresh."""

    new_files: int
    records_read: int
    total_seconds: float
    from_scratch: bool


class HourglassJob:
    """An incrementally-refreshable MR aggregation over a DFS directory."""

    def __init__(
        self,
        dfs: SimulatedDFS,
        engine: MapReduceEngine,
        name: str,
        input_dir: str,
        map_fn: MapFn,
        aggregate_fn: AggregateFn,
        merge_fn: MergeFn,
    ) -> None:
        if not name:
            raise ConfigError("job name must be non-empty")
        self.dfs = dfs
        self.engine = engine
        self.name = name
        self.input_dir = input_dir
        self.map_fn = map_fn
        self.aggregate_fn = aggregate_fn
        self.merge_fn = merge_fn
        self._state_path = f"/hourglass/{name}/state"
        self._processed_path = f"/hourglass/{name}/processed"
        self.output_path = f"/hourglass/{name}/output"

    # -- persisted bookkeeping ---------------------------------------------------

    def _load_processed(self) -> set[str]:
        if not self.dfs.exists(self._processed_path):
            return set()
        return set(self.dfs.read_file(self._processed_path).records)

    def _load_state(self) -> dict[Any, Any]:
        if not self.dfs.exists(self._state_path):
            return {}
        return dict(self.dfs.read_file(self._state_path).records)

    # -- refresh -------------------------------------------------------------------

    def run(self) -> HourglassRunResult:
        """Refresh the aggregate, mapping only unseen input part-files."""
        processed = self._load_processed()
        all_files = self.dfs.list_dir(self.input_dir)
        new_files = [path for path in all_files if path not in processed]
        state = self._load_state()
        from_scratch = not processed

        if not new_files:
            return HourglassRunResult(0, 0, 0.0, from_scratch)

        aggregate_fn = self.aggregate_fn

        def reduce_to_pairs(key: Any, values: list[Any]) -> Iterable[Any]:
            yield (key, aggregate_fn(values))

        # The MR engine reads whole directories, so the delta is staged
        # under its own prefix (as real Hourglass does with date partitions).
        staging = f"/hourglass/{self.name}/staging"
        for path in self.dfs.list_dir(staging):
            self.dfs.delete(path)
        for i, path in enumerate(new_files):
            records = self.dfs.read_file(path).records
            self.dfs.write_file(f"{staging}/part-{i:05d}", records)

        spec = MRJobSpec(
            name=f"hourglass-{self.name}",
            input_paths=[staging],
            output_path=f"/hourglass/{self.name}/delta",
            map_fn=self.map_fn,
            reduce_fn=reduce_to_pairs,
        )
        result = self.engine.run(spec)

        delta = dict(
            self.dfs.read_file(f"/hourglass/{self.name}/delta/part-00000").records
        )
        for key, partial in delta.items():
            if key in state:
                state[key] = self.merge_fn(state[key], partial)
            else:
                state[key] = partial

        self.dfs.overwrite_file(self._state_path, sorted(state.items(), key=repr))
        self.dfs.overwrite_file(
            self._processed_path, sorted(processed | set(new_files))
        )
        self.dfs.overwrite_file(self.output_path + "/part-00000",
                                sorted(state.items(), key=repr))
        return HourglassRunResult(
            new_files=len(new_files),
            records_read=result.records_in,
            total_seconds=result.total_seconds,
            from_scratch=from_scratch,
        )

    # -- queries ----------------------------------------------------------------------

    def result(self) -> dict[Any, Any]:
        """The current aggregate (empty before the first run)."""
        return self._load_state()
