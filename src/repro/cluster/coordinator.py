"""ZooKeeper-like coordination service (§4.3).

The paper uses Apache ZooKeeper to "maintain a set of in-sync-replicas" and
to drive leader re-election after broker failures.  Liquid only needs a small
slice of ZooKeeper's API, which this module reproduces:

* a hierarchical namespace of *znodes* holding small data blobs;
* *ephemeral* znodes tied to a client session, deleted when the session
  expires (this is how broker liveness is detected);
* *sequential* znodes for fair election queues;
* one-shot *watches* on nodes and on children, fired on changes.

The implementation is single-process and synchronous: watch callbacks run
inline at the mutation point, which keeps failure-handling deterministic in
tests and benchmarks.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.clock import Clock, SimClock
from repro.common.errors import (
    NodeExistsError,
    NoNodeError,
    SessionExpiredError,
)

#: Watch callbacks receive (event_type, path); event types below.
EVENT_CREATED = "created"
EVENT_DELETED = "deleted"
EVENT_CHANGED = "changed"
EVENT_CHILD = "child"

WatchCallback = Callable[[str, str], None]


@dataclass
class _ZNode:
    data: Any
    ephemeral_session: int | None = None
    version: int = 0
    children: set[str] = field(default_factory=set)


class Session:
    """A client session; owning ephemeral znodes dies with it."""

    def __init__(self, session_id: int, owner: str) -> None:
        self.session_id = session_id
        self.owner = owner
        self.alive = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else "expired"
        return f"Session({self.session_id}, {self.owner!r}, {state})"


class Coordinator:
    """In-process coordination service with znodes, sessions, and watches."""

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._nodes: dict[str, _ZNode] = {"/": _ZNode(data=None)}
        self._sessions: dict[int, Session] = {}
        self._session_ids = itertools.count(1)
        self._seq = itertools.count(0)
        # One-shot watches: path -> callbacks. Child watches fire on
        # create/delete of direct children.
        self._data_watches: dict[str, list[WatchCallback]] = {}
        self._child_watches: dict[str, list[WatchCallback]] = {}

    # -- sessions ---------------------------------------------------------------

    def connect(self, owner: str) -> Session:
        """Open a new session for a named client (e.g. ``broker-3``)."""
        session = Session(next(self._session_ids), owner)
        self._sessions[session.session_id] = session
        return session

    def expire_session(self, session: Session) -> list[str]:
        """Expire a session, deleting its ephemeral znodes.

        Returns deleted paths.  This is how the failure injector simulates a
        broker crash: the broker's ephemeral registration disappears and
        watchers (the controller) react.
        """
        if not session.alive:
            return []
        session.alive = False
        del self._sessions[session.session_id]
        victims = [
            path
            for path, node in self._nodes.items()
            if node.ephemeral_session == session.session_id
        ]
        # Delete leaf-first so parent child-sets stay consistent.
        for path in sorted(victims, key=len, reverse=True):
            self.delete(path)
        return victims

    def _check_session(self, session: Session | None) -> None:
        if session is not None and not session.alive:
            raise SessionExpiredError(f"session {session.session_id} expired")

    # -- namespace ----------------------------------------------------------------

    @staticmethod
    def _parent_of(path: str) -> str:
        parent = path.rsplit("/", 1)[0]
        return parent if parent else "/"

    @staticmethod
    def _validate_path(path: str) -> None:
        if not path.startswith("/") or (path != "/" and path.endswith("/")):
            raise NoNodeError(f"invalid path {path!r}")

    def create(
        self,
        path: str,
        data: Any = None,
        ephemeral: bool = False,
        sequential: bool = False,
        session: Session | None = None,
        make_parents: bool = False,
    ) -> str:
        """Create a znode; returns the actual path (suffixed if sequential)."""
        self._validate_path(path)
        self._check_session(session)
        if ephemeral and session is None:
            raise SessionExpiredError("ephemeral znodes require a session")
        if sequential:
            path = f"{path}{next(self._seq):010d}"
        if path in self._nodes:
            raise NodeExistsError(path)
        parent = self._parent_of(path)
        if parent not in self._nodes:
            if not make_parents:
                raise NoNodeError(f"parent {parent} of {path} does not exist")
            self._create_parents(parent)
        self._nodes[path] = _ZNode(
            data=data,
            ephemeral_session=session.session_id if ephemeral else None,
        )
        self._nodes[parent].children.add(path)
        self._fire_data_watches(path, EVENT_CREATED)
        self._fire_child_watches(parent)
        return path

    def _create_parents(self, path: str) -> None:
        if path in self._nodes:
            return
        parent = self._parent_of(path)
        self._create_parents(parent)
        self._nodes[path] = _ZNode(data=None)
        self._nodes[parent].children.add(path)
        self._fire_child_watches(parent)

    def delete(self, path: str) -> None:
        """Delete a znode (children are deleted recursively, leaf-first)."""
        node = self._nodes.get(path)
        if node is None:
            raise NoNodeError(path)
        for child in sorted(node.children, key=len, reverse=True):
            if child in self._nodes:
                self.delete(child)
        del self._nodes[path]
        parent = self._parent_of(path)
        if parent in self._nodes:
            self._nodes[parent].children.discard(path)
            self._fire_child_watches(parent)
        self._fire_data_watches(path, EVENT_DELETED)

    def exists(self, path: str) -> bool:
        return path in self._nodes

    def get(self, path: str) -> Any:
        node = self._nodes.get(path)
        if node is None:
            raise NoNodeError(path)
        return node.data

    def set_data(self, path: str, data: Any) -> int:
        """Update a znode's data; returns the new version."""
        node = self._nodes.get(path)
        if node is None:
            raise NoNodeError(path)
        node.data = data
        node.version += 1
        self._fire_data_watches(path, EVENT_CHANGED)
        return node.version

    def version(self, path: str) -> int:
        node = self._nodes.get(path)
        if node is None:
            raise NoNodeError(path)
        return node.version

    def children(self, path: str) -> list[str]:
        """Sorted child paths of a znode."""
        node = self._nodes.get(path)
        if node is None:
            raise NoNodeError(path)
        return sorted(node.children)

    # -- watches ---------------------------------------------------------------------

    def watch(self, path: str, callback: WatchCallback) -> None:
        """One-shot watch on a node's creation/deletion/data change."""
        self._data_watches.setdefault(path, []).append(callback)

    def watch_children(self, path: str, callback: WatchCallback) -> None:
        """One-shot watch on a node's direct-children set."""
        self._child_watches.setdefault(path, []).append(callback)

    def _fire_data_watches(self, path: str, event: str) -> None:
        callbacks = self._data_watches.pop(path, [])
        for callback in callbacks:
            callback(event, path)

    def _fire_child_watches(self, path: str) -> None:
        callbacks = self._child_watches.pop(path, [])
        for callback in callbacks:
            callback(EVENT_CHILD, path)

    # -- convenience patterns -----------------------------------------------------------

    def elect(self, election_path: str, candidate: str, session: Session) -> bool:
        """Try to win a first-write-wins election (e.g. ``/controller``).

        Returns True if this candidate now holds the ephemeral election node.
        """
        try:
            self.create(
                election_path,
                data=candidate,
                ephemeral=True,
                session=session,
                make_parents=True,
            )
            return True
        except NodeExistsError:
            return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Coordinator(nodes={len(self._nodes)}, "
            f"sessions={len(self._sessions)})"
        )
