"""Cluster controller: leader election and ISR maintenance (§4.3).

"all partitions handled by a lead broker are replicated across follower
brokers.  If a lead broker fails, a hand-over process selects a new leader
among its followers. ... A coordination service is used to maintain a set of
in-sync-replicas (ISRs) ... After a broker failure, a re-election mechanism
chooses a new leader from the set of ISRs.  This design guarantees that the
messaging layer can tolerate up to N-1 failures with N brokers in the set of
ISRs."

The controller is itself elected through the coordinator (first broker to
claim the ephemeral ``/controller`` node) and reacts to broker liveness
changes by reassigning partition leadership.  Leadership changes carry a
monotonically increasing *leader epoch* so stale leaders can be fenced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import ConfigError, NoNodeError
from repro.common.records import TopicPartition
from repro.cluster.coordinator import Coordinator, Session

#: Listener signature: (partition, new_leader_or_None, epoch, isr).
LeadershipListener = Callable[[TopicPartition, int | None, int, list[int]], None]
IsrListener = Callable[[TopicPartition, list[int]], None]


@dataclass
class PartitionState:
    """Controller-side view of one partition's replication state."""

    partition: TopicPartition
    replicas: list[int]
    leader: int | None
    isr: list[int]
    epoch: int = 0

    @property
    def online(self) -> bool:
        return self.leader is not None


class ClusterController:
    """Tracks broker liveness and assigns partition leadership.

    ``allow_unclean_election=True`` lets a non-ISR replica take over when the
    ISR is empty (availability over consistency); the default mirrors the
    paper's durability stance and leaves the partition offline instead.
    """

    def __init__(
        self,
        coordinator: Coordinator,
        allow_unclean_election: bool = False,
    ) -> None:
        self.coordinator = coordinator
        self.allow_unclean_election = allow_unclean_election
        self._partitions: dict[TopicPartition, PartitionState] = {}
        self._live_brokers: set[int] = set()
        self._sessions: dict[int, Session] = {}
        self._leadership_listeners: list[LeadershipListener] = []
        self._isr_listeners: list[IsrListener] = []
        self.controller_id: int | None = None
        self.coordinator.create("/brokers", make_parents=True)
        self.coordinator.create("/topics", make_parents=True)

    # -- broker membership -------------------------------------------------------

    def register_broker(self, broker_id: int) -> Session:
        """A broker comes online: ephemeral registration + controller race."""
        if broker_id in self._sessions:
            raise ConfigError(f"broker {broker_id} already registered")
        session = self.coordinator.connect(f"broker-{broker_id}")
        self.coordinator.create(
            f"/brokers/{broker_id}",
            data={"id": broker_id},
            ephemeral=True,
            session=session,
            make_parents=True,
        )
        self._sessions[broker_id] = session
        self._live_brokers.add(broker_id)
        if self.controller_id is None:
            if self.coordinator.elect("/controller", str(broker_id), session):
                self.controller_id = broker_id
        self._maybe_restore_leadership(broker_id)
        return session

    def broker_failed(self, broker_id: int) -> list[TopicPartition]:
        """A broker dies: expire its session, re-elect affected leaders.

        Returns the partitions whose leadership changed (or went offline).
        """
        session = self._sessions.pop(broker_id, None)
        if session is None:
            return []
        self._live_brokers.discard(broker_id)
        self.coordinator.expire_session(session)
        if self.controller_id == broker_id:
            self._elect_controller()
        affected: list[TopicPartition] = []
        for state in self._partitions.values():
            changed = False
            # The last ISR member stays in the ISR even while down (Kafka
            # semantics): it holds all committed data, so its recovery is a
            # clean path back online.
            if broker_id in state.isr and len(state.isr) > 1:
                state.isr = [b for b in state.isr if b != broker_id]
                self._notify_isr(state)
                changed = True
            if state.leader == broker_id:
                self._elect_leader(state)
                changed = True
            if changed:
                affected.append(state.partition)
        return affected

    def broker_recovered(self, broker_id: int) -> Session:
        """A crashed broker restarts.  It rejoins but does not re-enter any
        ISR until replication catches it up (see :meth:`expand_isr`)."""
        return self.register_broker(broker_id)

    def _elect_controller(self) -> None:
        self.controller_id = None
        for broker_id in sorted(self._live_brokers):
            session = self._sessions.get(broker_id)
            if session is not None and self.coordinator.elect(
                "/controller", str(broker_id), session
            ):
                self.controller_id = broker_id
                return

    def _maybe_restore_leadership(self, broker_id: int) -> None:
        """On broker (re)start, give it back offline partitions it replicates.

        A recovered replica of an offline partition is by definition the best
        candidate available; it is also potentially stale, which is exactly
        the unclean-election trade-off, so this only happens for partitions
        with an empty ISR when unclean election is enabled, or when the
        recovering broker is already in the ISR (it was shut down cleanly).
        """
        for state in self._partitions.values():
            if state.leader is not None or broker_id not in state.replicas:
                continue
            if broker_id in state.isr or self.allow_unclean_election:
                if broker_id not in state.isr:
                    state.isr = [broker_id]
                state.leader = broker_id
                state.epoch += 1
                self._notify_leadership(state)

    # -- partition lifecycle ---------------------------------------------------------

    def create_partition(
        self, partition: TopicPartition, replicas: list[int]
    ) -> PartitionState:
        """Register a partition; the first live replica becomes leader."""
        if partition in self._partitions:
            raise ConfigError(f"partition {partition} already exists")
        if not replicas:
            raise ConfigError("replicas must be non-empty")
        if len(set(replicas)) != len(replicas):
            raise ConfigError(f"duplicate replicas: {replicas}")
        dead = [b for b in replicas if b not in self._live_brokers]
        if dead:
            raise ConfigError(f"replicas not live: {dead}")
        state = PartitionState(
            partition=partition,
            replicas=list(replicas),
            leader=replicas[0],
            isr=list(replicas),
            epoch=1,
        )
        self._partitions[partition] = state
        self.coordinator.create(
            f"/topics/{partition.topic}/partitions/{partition.partition}",
            data={"replicas": list(replicas)},
            make_parents=True,
        )
        self._notify_leadership(state)
        return state

    def _elect_leader(self, state: PartitionState) -> None:
        """Pick a new leader from the ISR (preferred-replica order)."""
        candidates = [b for b in state.replicas if b in state.isr and b in self._live_brokers]
        if not candidates and self.allow_unclean_election:
            candidates = [b for b in state.replicas if b in self._live_brokers]
            if candidates:
                state.isr = [candidates[0]]
        state.leader = candidates[0] if candidates else None
        state.epoch += 1
        self._notify_leadership(state)

    # -- ISR maintenance ------------------------------------------------------------

    def shrink_isr(self, partition: TopicPartition, broker_id: int) -> list[int]:
        """Remove a lagging follower from the ISR; returns the new ISR."""
        state = self._state(partition)
        if broker_id == state.leader:
            raise ConfigError("cannot shrink the leader out of its own ISR")
        if broker_id in state.isr:
            state.isr = [b for b in state.isr if b != broker_id]
            self._notify_isr(state)
        return list(state.isr)

    def expand_isr(self, partition: TopicPartition, broker_id: int) -> list[int]:
        """Re-admit a caught-up follower to the ISR; returns the new ISR."""
        state = self._state(partition)
        if broker_id not in state.replicas:
            raise ConfigError(f"broker {broker_id} is not a replica of {partition}")
        if broker_id not in self._live_brokers:
            raise ConfigError(f"broker {broker_id} is not live")
        if broker_id not in state.isr:
            state.isr.append(broker_id)
            self._notify_isr(state)
        return list(state.isr)

    # -- queries -----------------------------------------------------------------------

    def _state(self, partition: TopicPartition) -> PartitionState:
        state = self._partitions.get(partition)
        if state is None:
            raise NoNodeError(f"unknown partition {partition}")
        return state

    def partition_state(self, partition: TopicPartition) -> PartitionState:
        return self._state(partition)

    def leader_for(self, partition: TopicPartition) -> int | None:
        return self._state(partition).leader

    def isr_for(self, partition: TopicPartition) -> list[int]:
        return list(self._state(partition).isr)

    def epoch_for(self, partition: TopicPartition) -> int:
        return self._state(partition).epoch

    def live_brokers(self) -> set[int]:
        return set(self._live_brokers)

    def partitions(self) -> list[TopicPartition]:
        return list(self._partitions)

    def offline_partitions(self) -> list[TopicPartition]:
        return [tp for tp, st in self._partitions.items() if not st.online]

    # -- listeners ----------------------------------------------------------------------

    def on_leadership_change(self, listener: LeadershipListener) -> None:
        self._leadership_listeners.append(listener)

    def on_isr_change(self, listener: IsrListener) -> None:
        self._isr_listeners.append(listener)

    def _notify_leadership(self, state: PartitionState) -> None:
        for listener in self._leadership_listeners:
            listener(state.partition, state.leader, state.epoch, list(state.isr))

    def _notify_isr(self, state: PartitionState) -> None:
        for listener in self._isr_listeners:
            listener(state.partition, list(state.isr))
