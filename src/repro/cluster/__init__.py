"""Coordination substrate: ZooKeeper-like coordinator, controller, faults."""

from repro.cluster.controller import ClusterController, PartitionState
from repro.cluster.coordinator import (
    EVENT_CHANGED,
    EVENT_CHILD,
    EVENT_CREATED,
    EVENT_DELETED,
    Coordinator,
    Session,
)
from repro.cluster.failures import FailureInjector

__all__ = [
    "Coordinator",
    "Session",
    "ClusterController",
    "PartitionState",
    "FailureInjector",
    "EVENT_CREATED",
    "EVENT_DELETED",
    "EVENT_CHANGED",
    "EVENT_CHILD",
]
