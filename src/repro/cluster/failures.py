"""Failure injection for availability experiments (E5) and recovery tests.

§iii of the paper's property list: "the data must be highly available for
both reads and writes under common cluster failures."  The injector lets
tests and benchmarks script those failures — broker crashes, restarts, and
network partitions between clients and brokers — at exact simulated times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.clock import SimClock


@dataclass(order=True)
class _ScheduledFault:
    at: float
    seq: int
    action: Callable[[], Any] = field(compare=False)
    label: str = field(compare=False, default="")


class FailureInjector:
    """Schedules fault actions on a :class:`SimClock` and records a timeline.

    Actions are arbitrary callables so the injector stays decoupled from the
    messaging layer; convenience helpers cover the common cases once given a
    cluster object exposing ``kill_broker`` / ``restart_broker``.
    """

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self.timeline: list[tuple[float, str]] = []
        self._seq = 0

    def at(self, when: float, action: Callable[[], Any], label: str = "") -> None:
        """Run ``action`` at absolute simulated time ``when``."""
        self._seq += 1

        def fire() -> None:
            self.timeline.append((self.clock.now(), label or repr(action)))
            action()

        self.clock.schedule_at(when, fire)

    def after(self, delay: float, action: Callable[[], Any], label: str = "") -> None:
        """Run ``action`` ``delay`` seconds from now."""
        self.at(self.clock.now() + delay, action, label)

    # -- convenience helpers (duck-typed against MessagingCluster) ---------------

    def kill_broker_at(self, when: float, cluster: Any, broker_id: int) -> None:
        self.at(
            when,
            lambda: cluster.kill_broker(broker_id),
            label=f"kill broker {broker_id}",
        )

    def restart_broker_at(self, when: float, cluster: Any, broker_id: int) -> None:
        self.at(
            when,
            lambda: cluster.restart_broker(broker_id),
            label=f"restart broker {broker_id}",
        )

    def kill_leader_at(self, when: float, cluster: Any, topic: str, partition: int) -> None:
        """Kill whichever broker leads the partition *at fire time*."""

        def action() -> None:
            leader = cluster.leader_of(topic, partition)
            if leader is not None:
                self.timeline.append(
                    (self.clock.now(), f"killing leader {leader} of {topic}-{partition}")
                )
                cluster.kill_broker(leader)

        self.at(when, action, label=f"kill leader of {topic}-{partition}")

    def events(self) -> list[tuple[float, str]]:
        """Timeline of fired faults: (simulated time, label)."""
        return list(self.timeline)
