"""Scaling decisions with hysteresis, cooldowns, and bounds.

The policy converts :class:`~repro.elasticity.lagmonitor.LagSample`
observations into provision/deprovision decisions for a job's task
containers.  Three guards keep the loop stable (the flapping failure mode
the Kafka design-pattern survey, arXiv:2512.16146, warns lag-driven
autoscalers about):

* **hysteresis** — the scale-out threshold sits well above the scale-in
  threshold, and a breach must persist for ``breach_observations``
  consecutive samples before it counts;
* **cooldown** — after any scale event the policy holds still for
  ``cooldown`` simulated seconds, letting the new parallelism show up in
  the lag signal before reacting again;
* **bounds** — container counts are clamped to
  ``[min_containers, max_containers]``.

Every input is either constructor config or an explicit ``(sample, now)``
argument — the policy never reads a clock or RNG of its own — so a decision
sequence is a pure function of the observation sequence and replays
byte-for-byte under the simulated clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.elasticity.lagmonitor import LagSample

#: Decision kinds.
SCALE_NONE = "none"
SCALE_OUT = "scale_out"
SCALE_IN = "scale_in"


@dataclass(frozen=True)
class ScalingDecision:
    """One policy verdict at one simulated instant."""

    at: float
    action: str                 # SCALE_NONE / SCALE_OUT / SCALE_IN
    from_containers: int
    to_containers: int
    reason: str

    @property
    def is_scale(self) -> bool:
        return self.action != SCALE_NONE


class ScalingPolicy:
    """Lag-per-container thresholding with hysteresis and cooldown."""

    def __init__(
        self,
        *,
        min_containers: int = 1,
        max_containers: int = 8,
        scale_out_lag: float = 200.0,
        scale_in_lag: float = 20.0,
        breach_observations: int = 2,
        cooldown: float = 2.0,
        step: int = 1,
    ) -> None:
        if min_containers < 1:
            raise ConfigError("min_containers must be >= 1")
        if max_containers < min_containers:
            raise ConfigError("max_containers must be >= min_containers")
        if scale_in_lag >= scale_out_lag:
            raise ConfigError(
                "hysteresis requires scale_in_lag < scale_out_lag "
                f"(got {scale_in_lag} >= {scale_out_lag})"
            )
        if breach_observations < 1:
            raise ConfigError("breach_observations must be >= 1")
        if cooldown < 0:
            raise ConfigError("cooldown must be >= 0")
        if step < 1:
            raise ConfigError("step must be >= 1")
        self.min_containers = min_containers
        self.max_containers = max_containers
        self.scale_out_lag = scale_out_lag
        self.scale_in_lag = scale_in_lag
        self.breach_observations = breach_observations
        self.cooldown = cooldown
        self.step = step
        self._high_breaches = 0
        self._low_breaches = 0
        self._last_scale_at: float | None = None

    # -- the decision function ------------------------------------------------------

    def decide(
        self, containers: int, sample: LagSample, now: float | None = None
    ) -> ScalingDecision:
        """Verdict for ``containers`` given ``sample`` (taken at ``sample.at``)."""
        at = now if now is not None else sample.at
        lag_per = sample.total_lag / max(1, containers)
        if lag_per > self.scale_out_lag:
            self._high_breaches += 1
            self._low_breaches = 0
        elif lag_per < self.scale_in_lag:
            self._low_breaches += 1
            self._high_breaches = 0
        else:
            self._high_breaches = 0
            self._low_breaches = 0
        if (
            self._last_scale_at is not None
            and at - self._last_scale_at < self.cooldown
        ):
            return self._none(at, containers, "cooldown")
        if self._high_breaches >= self.breach_observations:
            target = min(self.max_containers, containers + self.step)
            if target > containers:
                return self._scale(at, SCALE_OUT, containers, target,
                                   f"lag/container {lag_per:.0f} > "
                                   f"{self.scale_out_lag:.0f}")
            return self._none(at, containers, "at max_containers")
        if self._low_breaches >= self.breach_observations:
            target = max(self.min_containers, containers - self.step)
            if target >= containers:
                return self._none(at, containers, "at min_containers")
            # Shrinking must not immediately re-breach the out threshold.
            if sample.total_lag / target > self.scale_out_lag:
                return self._none(at, containers, "shrink would re-breach")
            return self._scale(at, SCALE_IN, containers, target,
                               f"lag/container {lag_per:.0f} < "
                               f"{self.scale_in_lag:.0f}")
        return self._none(at, containers, "within band")

    def _scale(
        self, at: float, action: str, current: int, target: int, reason: str
    ) -> ScalingDecision:
        self._last_scale_at = at
        self._high_breaches = 0
        self._low_breaches = 0
        return ScalingDecision(at, action, current, target, reason)

    @staticmethod
    def _none(at: float, containers: int, reason: str) -> ScalingDecision:
        return ScalingDecision(at, SCALE_NONE, containers, containers, reason)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ScalingPolicy([{self.min_containers}..{self.max_containers}], "
            f"out>{self.scale_out_lag}, in<{self.scale_in_lag}, "
            f"cooldown={self.cooldown})"
        )
