"""End-to-end backpressure: slow the intake instead of falling over.

Scaling out (controller.py) is the right answer when capacity is the
bottleneck; when the bottleneck is *downstream* — a lagging derived topic,
a state store pressing against its container's memory quota — adding
containers just moves the pile-up.  The :class:`BackpressureValve` is the
complementary mechanism: it watches pressure signals and throttles the
*source* by pausing the consumer's partitions and shrinking its poll fetch
budget, propagating slack upstream the way Liquid's pull-based consumption
model (§3.1) naturally allows — a paused puller simply stops pulling.

The valve is a three-state machine with watermark hysteresis:

* **open** — every signal below its low watermark: full fetch budget;
* **throttled** — some signal between its watermarks: the budget shrinks
  to ``throttle_fraction`` of normal;
* **closed** — some signal at/over its high watermark: all assigned
  partitions are paused and the budget is zero.

Like everything in the stack it reads only the simulated world: signals
are plain callables (a :class:`~repro.elasticity.lagmonitor.LagMonitor`
for downstream lag, :meth:`IsolatedHost.memory_ratio
<repro.processing.containers.IsolatedHost.memory_ratio>` for memory), so a
valve-governed run replays deterministically.
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import ConfigError
from repro.common.metrics import metric_name, metric_segment
from repro.elasticity.lagmonitor import LagMonitor

#: Valve states.
VALVE_OPEN = "open"
VALVE_THROTTLED = "throttled"
VALVE_CLOSED = "closed"


class BackpressureValve:
    """Pauses partitions and shrinks fetch budgets under pressure.

    ``downstream`` is a :class:`LagMonitor` on the consumer *of this
    consumer's output* (records in the derived topic not yet drained);
    ``memory`` is any zero-argument callable returning used/quota, e.g.
    ``lambda: host.memory_ratio("enrich")``.  At least one signal is
    required — a valve with nothing to watch is a config error.
    """

    def __init__(
        self,
        consumer,
        *,
        downstream: LagMonitor | None = None,
        lag_high: float = 1000.0,
        lag_low: float = 200.0,
        memory: Callable[[], float] | None = None,
        memory_high: float = 0.9,
        memory_low: float = 0.7,
        throttle_fraction: float = 0.25,
    ) -> None:
        if downstream is None and memory is None:
            raise ConfigError("valve needs a downstream monitor or memory signal")
        if lag_low >= lag_high:
            raise ConfigError(
                f"hysteresis requires lag_low < lag_high ({lag_low} >= {lag_high})"
            )
        if memory_low >= memory_high:
            raise ConfigError(
                "hysteresis requires memory_low < memory_high "
                f"({memory_low} >= {memory_high})"
            )
        if not 0 < throttle_fraction <= 1:
            raise ConfigError(
                f"throttle_fraction must be in (0, 1], got {throttle_fraction}"
            )
        self.consumer = consumer
        self.downstream = downstream
        self.lag_high = lag_high
        self.lag_low = lag_low
        self.memory = memory
        self.memory_high = memory_high
        self.memory_low = memory_low
        self.throttle_fraction = throttle_fraction
        self.state = VALVE_OPEN
        self.last_lag = 0
        self.last_memory_ratio = 0.0
        segment = metric_segment(consumer.group or consumer.member_id)
        metrics = consumer.cluster.metrics
        self._c_pauses = metrics.counter(
            metric_name("elasticity", "backpressure", segment, "pauses")
        )
        self._c_resumes = metrics.counter(
            metric_name("elasticity", "backpressure", segment, "resumes")
        )
        self._g_throttle = metrics.gauge(
            metric_name("elasticity", "backpressure", segment, "throttle")
        )
        self._g_throttle.set(1.0)

    # -- the pressure check ----------------------------------------------------------

    def check(self) -> str:
        """Re-evaluate the signals and transition; returns the new state."""
        if self.downstream is not None:
            self.last_lag = self.downstream.observe().total_lag
        if self.memory is not None:
            self.last_memory_ratio = self.memory()
        high = (
            self.downstream is not None and self.last_lag >= self.lag_high
        ) or (
            self.memory is not None and self.last_memory_ratio >= self.memory_high
        )
        eased = (
            self.downstream is None or self.last_lag <= self.lag_low
        ) and (
            self.memory is None or self.last_memory_ratio <= self.memory_low
        )
        if high:
            target = VALVE_CLOSED
        elif eased:
            target = VALVE_OPEN
        else:
            target = VALVE_THROTTLED
        self._transition(target)
        return self.state

    def _transition(self, target: str) -> None:
        if target == self.state:
            return
        if target == VALVE_CLOSED:
            self.consumer.pause(*self.consumer.assignment())
            self._c_pauses.increment(1)
        elif self.state == VALVE_CLOSED:
            self.consumer.resume(*self.consumer.assignment())
            self._c_resumes.increment(1)
        self.state = target
        self._g_throttle.set(self._budget_scale())

    def status(self) -> dict:
        """Machine-readable view of the valve for health/telemetry rollups."""
        return {
            "state": self.state,
            "last_lag": self.last_lag,
            "last_memory_ratio": self.last_memory_ratio,
            "budget_scale": self._budget_scale(),
        }

    def _budget_scale(self) -> float:
        if self.state == VALVE_CLOSED:
            return 0.0
        if self.state == VALVE_THROTTLED:
            return self.throttle_fraction
        return 1.0

    def fetch_budget(self, requested: int | None = None) -> int:
        """The poll budget the current state permits.

        ``requested`` defaults to the consumer's ``max_poll_messages``.
        Closed returns 0; throttled shrinks to ``throttle_fraction`` of the
        request (at least one record, so progress never fully stalls on a
        merely-throttled valve); open passes the request through.
        """
        base = (
            requested if requested is not None else self.consumer.max_poll_messages
        )
        if self.state == VALVE_CLOSED:
            return 0
        if self.state == VALVE_THROTTLED:
            return max(1, int(base * self.throttle_fraction))
        return base

    def poll(self, max_messages: int | None = None) -> list:
        """Valve-governed poll: check pressure, then poll within budget."""
        self.check()
        budget = self.fetch_budget(max_messages)
        if budget <= 0:
            return []
        return self.consumer.poll(budget)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BackpressureValve(state={self.state}, lag={self.last_lag}, "
            f"memory={self.last_memory_ratio:.2f})"
        )
