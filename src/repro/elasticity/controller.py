"""The elastic resource controller: closing the loop from load to capacity.

Liquid's processing layer runs jobs in resource-isolated containers (§3.2,
§4.4), but the reproduction — like the paper — provisions a job's
parallelism once, at submission.  :class:`ElasticJobController` closes the
loop *Reactive Liquid* (arXiv:1902.05968) calls for: it observes consumer
lag through a :class:`~repro.elasticity.lagmonitor.LagMonitor`, asks a
:class:`~repro.elasticity.policy.ScalingPolicy` for a verdict, and
grows/shrinks the number of task containers accordingly.

The capacity model mirrors :class:`~repro.processing.containers.IsolatedHost`:
each container contributes ``quantum / cpu_cost`` messages of processing
budget per scheduling quantum, so provisioned containers translate directly
into simulated drain rate.  A job's *tasks* stay fixed (task *i* owns
partition *i* — the paper's parallelism unit); what scales is how many
containers host them.  Task→container placement is sticky: a scale event
moves only the tasks needed to rebalance, and each moved task is restarted
through the existing changelog-recovery machinery at a checkpoint boundary
(checkpoint first, then migrate), so the job's output is byte-identical to
a run at any fixed parallelism — elasticity changes *when* records are
processed, never *what* is emitted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.clock import SimClock
from repro.common.errors import ConfigError
from repro.common.metrics import metric_name, metric_segment
from repro.elasticity.lagmonitor import LagMonitor, LagSample
from repro.elasticity.policy import (
    SCALE_IN,
    SCALE_OUT,
    ScalingDecision,
    ScalingPolicy,
)
from repro.observability.trace import current_tracer
from repro.processing.job import JobRunner, PollResult


@dataclass(frozen=True)
class ScaleEvent:
    """One applied scale event, for timelines and reports."""

    at: float
    action: str                   # SCALE_OUT / SCALE_IN
    from_containers: int
    to_containers: int
    migrated_tasks: tuple[int, ...]
    reason: str
    migration_seconds: float = 0.0

    def __str__(self) -> str:
        arrow = f"{self.from_containers}->{self.to_containers}"
        moved = ",".join(str(t) for t in self.migrated_tasks) or "-"
        return (
            f"{self.at:.3f} {self.action} containers={arrow} "
            f"moved=[{moved}] ({self.reason})"
        )


@dataclass
class StepReport:
    """Outcome of one controller step (one scheduling quantum)."""

    poll: PollResult
    sample: LagSample
    decision: ScalingDecision
    event: ScaleEvent | None = None
    containers: int = 0


class ElasticJobController:
    """Runs one job under lag-driven elastic container provisioning."""

    def __init__(
        self,
        runner: JobRunner,
        policy: ScalingPolicy | None = None,
        *,
        quantum: float = 0.25,
        monitor: LagMonitor | None = None,
        alpha: float = 0.3,
    ) -> None:
        if quantum <= 0:
            raise ConfigError("quantum must be > 0")
        self.runner = runner
        self.policy = policy if policy is not None else ScalingPolicy()
        self.quantum = quantum
        self.monitor = (
            monitor if monitor is not None else LagMonitor.for_job(runner, alpha)
        )
        self.clock = runner.clock
        # The controller owns time: containers process in parallel inside a
        # quantum, so per-pass latencies must not be serialized onto the
        # clock the way a standalone poll_once would.
        runner.auto_advance_clock = False
        self.containers = min(self.policy.min_containers, runner.num_tasks)
        self._container_of: dict[int, int] = {}
        self._rebalance_containers(self.containers)
        self.events: list[ScaleEvent] = []
        self.steps = 0
        segment = metric_segment(runner.config.name)
        metrics = runner.cluster.metrics
        self._g_containers = metrics.gauge(
            metric_name("elasticity", "controller", segment, "containers")
        )
        self._c_scale_outs = metrics.counter(
            metric_name("elasticity", "controller", segment, "scale_outs")
        )
        self._c_scale_ins = metrics.counter(
            metric_name("elasticity", "controller", segment, "scale_ins")
        )
        self._c_migrations = metrics.counter(
            metric_name("elasticity", "controller", segment, "task_migrations")
        )
        self._c_promotions = metrics.counter(
            metric_name("elasticity", "controller", segment, "standby_promotions")
        )
        self._g_containers.set(float(self.containers))

    # -- placement -------------------------------------------------------------------

    def assignment(self) -> dict[int, list[int]]:
        """Current container -> task ids placement (sorted both ways)."""
        placement: dict[int, list[int]] = {c: [] for c in range(self.containers)}
        for task_id in sorted(self._container_of):
            placement[self._container_of[task_id]].append(task_id)
        return placement

    def _rebalance_containers(self, count: int) -> list[int]:
        """Sticky re-placement of tasks onto ``count`` containers.

        Keeps every task on its current container when that container
        survives and is not over its target share; only the minimum set of
        tasks moves.  Returns the moved task ids (sorted).
        """
        tasks = list(range(self.runner.num_tasks))
        per = len(tasks) // count
        extra = len(tasks) % count
        target = {c: per + (1 if c < extra else 0) for c in range(count)}
        kept: dict[int, list[int]] = {c: [] for c in range(count)}
        moved: list[int] = []
        for task_id in tasks:
            container = self._container_of.get(task_id)
            if (
                container is not None
                and container < count
                and len(kept[container]) < target[container]
            ):
                kept[container].append(task_id)
            else:
                moved.append(task_id)
        for task_id in moved:
            for container in range(count):
                if len(kept[container]) < target[container]:
                    kept[container].append(task_id)
                    self._container_of[task_id] = container
                    break
        for container, task_ids in kept.items():
            for task_id in task_ids:
                self._container_of[task_id] = container
        return sorted(moved)

    # -- the control loop ------------------------------------------------------------

    def step(self, dt: float | None = None) -> StepReport:
        """One scheduling quantum: poll, observe, decide, (maybe) scale.

        Each container gets ``dt / cpu_cost`` messages of budget and its
        tasks drain it in task order; the clock then advances by ``dt`` once
        — containers run in parallel, so more containers mean more records
        per simulated second.  Scale events apply at the checkpoint boundary
        *after* the quantum's processing.
        """
        dt = dt if dt is not None else self.quantum
        budget = max(1, int(dt / self.runner.cpu_cost))
        poll = PollResult()
        for container, task_ids in sorted(self.assignment().items()):
            if not task_ids:
                continue
            result = self.runner.poll_tasks(task_ids, max_messages=budget)
            poll.records_processed += result.records_processed
            poll.records_emitted += result.records_emitted
            poll.latency += result.latency
        if isinstance(self.clock, SimClock):
            self.clock.advance(dt)
        self.steps += 1
        sample = self.monitor.observe()
        decision = self.policy.decide(self.containers, sample, self.clock.now())
        event = self._apply(decision) if decision.is_scale else None
        return StepReport(poll, sample, decision, event, self.containers)

    def _apply(self, decision: ScalingDecision) -> ScaleEvent:
        """Apply a scale decision at a checkpoint boundary.

        Order matters for the byte-identical guarantee: checkpoint every
        task first (so a migrated task resumes exactly where it stopped),
        then re-place and restart the moved tasks from their changelogs.
        """
        self.runner.checkpoint()
        self.containers = decision.to_containers
        moved = self._rebalance_containers(self.containers)
        migration_seconds = 0.0
        promotions = 0
        for task_id in moved:
            report = self.runner.migrate_task(task_id)
            migration_seconds += report.simulated_seconds
            # Jobs with standby replicas restart moved tasks off a warm
            # copy — the migration pays only the changelog catch-up tail.
            promotions += report.standby_promotions()
        if migration_seconds and isinstance(self.clock, SimClock):
            self.clock.advance(migration_seconds)
        event = ScaleEvent(
            at=decision.at,
            action=decision.action,
            from_containers=decision.from_containers,
            to_containers=decision.to_containers,
            migrated_tasks=tuple(moved),
            reason=decision.reason,
            migration_seconds=migration_seconds,
        )
        self.events.append(event)
        self._g_containers.set(float(self.containers))
        if decision.action == SCALE_OUT:
            self._c_scale_outs.increment(1)
        elif decision.action == SCALE_IN:
            self._c_scale_ins.increment(1)
        self._c_migrations.increment(len(moved))
        if promotions:
            self._c_promotions.increment(promotions)
        tracer = current_tracer()
        if tracer is not None:
            span = tracer.open_span(
                "elasticity.scale",
                None,
                start=decision.at,
                job=self.runner.config.name,
                action=decision.action,
                from_containers=decision.from_containers,
                to_containers=decision.to_containers,
                migrated_tasks=list(moved),
                reason=decision.reason,
            )
            if span is not None:
                tracer.close(span, end=self.clock.now())
        return event

    def run_until_drained(
        self, max_steps: int = 10_000, settle_steps: int = 1
    ) -> list[StepReport]:
        """Step until the job's backlog stays empty; returns all reports.

        ``settle_steps`` extra quanta run after the backlog first hits zero
        so replication/commits settle and scale-in gets a chance to trigger
        under the emptied lag signal.
        """
        reports: list[StepReport] = []
        settled = 0
        for _ in range(max_steps):
            report = self.step()
            reports.append(report)
            if self.runner.backlog() == 0 and report.poll.records_processed == 0:
                settled += 1
                if settled > settle_steps:
                    return reports
            else:
                settled = 0
        raise ConfigError(
            f"job {self.runner.config.name!r} did not drain within "
            f"{max_steps} quanta"
        )

    def timeline(self) -> list[str]:
        """Human-readable scale-event timeline (deterministic per run)."""
        return [str(event) for event in self.events]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ElasticJobController({self.runner.config.name!r}, "
            f"containers={self.containers}, events={len(self.events)})"
        )
