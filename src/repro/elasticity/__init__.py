"""Elasticity layer: lag-driven autoscaling and end-to-end backpressure.

The feedback loop *Reactive Liquid* (arXiv:1902.05968) proposes on top of
Liquid's static resource isolation: sense consumer lag
(:class:`LagMonitor`), decide with hysteresis (:class:`ScalingPolicy`),
act by growing/shrinking a job's task containers at checkpoint boundaries
(:class:`ElasticJobController`), and throttle intake when the bottleneck
is downstream (:class:`BackpressureValve`).
"""

from repro.elasticity.backpressure import (
    VALVE_CLOSED,
    VALVE_OPEN,
    VALVE_THROTTLED,
    BackpressureValve,
)
from repro.elasticity.controller import (
    ElasticJobController,
    ScaleEvent,
    StepReport,
)
from repro.elasticity.lagmonitor import Ewma, LagMonitor, LagSample
from repro.elasticity.policy import (
    SCALE_IN,
    SCALE_NONE,
    SCALE_OUT,
    ScalingDecision,
    ScalingPolicy,
)

__all__ = [
    "BackpressureValve",
    "ElasticJobController",
    "Ewma",
    "LagMonitor",
    "LagSample",
    "SCALE_IN",
    "SCALE_NONE",
    "SCALE_OUT",
    "ScaleEvent",
    "ScalingDecision",
    "ScalingPolicy",
    "StepReport",
    "VALVE_CLOSED",
    "VALVE_OPEN",
    "VALVE_THROTTLED",
]
