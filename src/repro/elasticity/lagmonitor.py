"""Lag and processing-rate observation: the sensor of the elastic loop.

Liquid's §4.4 pitch is ETL-as-a-service with per-job resource isolation;
*Reactive Liquid* (arXiv:1902.05968) argues the missing piece is a feedback
loop that reacts to observed load.  This module is the sensing half of that
loop: a :class:`LagMonitor` derives per-partition consumer lag (how far a
group or job trails the high watermark) and a processing-rate EWMA from
state the stack already maintains — broker end offsets, offset-manager
commits, or a job's live task positions.  Nothing here reads the wall
clock; every sample is stamped with the cluster's simulated clock, so a
monitored run replays deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.common.errors import BrokerUnavailableError, ConfigError
from repro.common.metrics import metric_name, metric_segment
from repro.common.records import TopicPartition


class Ewma:
    """Exponentially-weighted moving average with a fixed smoothing factor.

    The first update seeds the average (no bias-correction warm-up), which
    keeps the arithmetic trivially replayable: the value is a pure function
    of the update sequence.
    """

    __slots__ = ("alpha", "_value")

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0 < alpha <= 1:
            raise ConfigError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._value: float | None = None

    def update(self, sample: float) -> float:
        if self._value is None:
            self._value = float(sample)
        else:
            self._value += self.alpha * (sample - self._value)
        return self._value

    @property
    def value(self) -> float:
        """Current average (0.0 before the first update)."""
        return self._value if self._value is not None else 0.0

    @property
    def primed(self) -> bool:
        return self._value is not None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Ewma(alpha={self.alpha}, value={self.value:.6g})"


@dataclass(frozen=True)
class LagSample:
    """One observation of a consumer's standing against its inputs."""

    at: float
    lag_by_partition: Mapping[TopicPartition, int] = field(default_factory=dict)
    #: Smoothed processing rate, records per simulated second.
    rate: float = 0.0

    @property
    def total_lag(self) -> int:
        return sum(self.lag_by_partition.values())

    @property
    def max_partition_lag(self) -> int:
        return max(self.lag_by_partition.values(), default=0)


class LagMonitor:
    """Derives lag and rate EWMAs for one consumer group or job.

    ``positions`` supplies the consumer's live positions per partition; the
    default reads the group's committed offsets from the offset manager
    (the durable view an external autoscaler would see).  The elastic job
    controller instead passes the runner's in-memory task positions via
    :meth:`for_job`, which reacts a checkpoint-interval earlier.

    Partitions that are momentarily offline (leader election in flight)
    reuse their last observed lag rather than dropping out of the sample —
    a control loop must not mistake a failover blip for a drained backlog.
    """

    def __init__(
        self,
        cluster: Any,
        group: str,
        topics: list[str] | tuple[str, ...],
        alpha: float = 0.3,
        positions: Callable[[], Mapping[TopicPartition, int]] | None = None,
    ) -> None:
        if not topics:
            raise ConfigError("LagMonitor needs at least one topic")
        self.cluster = cluster
        self.group = group
        self.topics = list(topics)
        self.rate_ewma = Ewma(alpha)
        self._positions = positions
        self._last_at: float | None = None
        self._last_consumed: int | None = None
        self._last_lag: dict[TopicPartition, int] = {}
        segment = metric_segment(group)
        self._g_lag = cluster.metrics.gauge(
            metric_name("elasticity", "lag_monitor", segment, "lag")
        )
        self._g_rate = cluster.metrics.gauge(
            metric_name("elasticity", "lag_monitor", segment, "rate")
        )

    @classmethod
    def for_job(cls, runner: Any, alpha: float = 0.3) -> "LagMonitor":
        """Monitor a :class:`~repro.processing.job.JobRunner`'s live positions."""

        def positions() -> dict[TopicPartition, int]:
            merged: dict[TopicPartition, int] = {}
            for instance in runner.tasks():
                merged.update(instance.positions)
            return merged

        return cls(
            runner.cluster,
            runner.checkpoints.group,
            list(runner.config.inputs),
            alpha=alpha,
            positions=positions,
        )

    # -- sampling ------------------------------------------------------------------

    def _current_positions(self) -> Mapping[TopicPartition, int]:
        if self._positions is not None:
            return self._positions()
        committed: dict[TopicPartition, int] = {}
        for topic in self.topics:
            for tp in self.cluster.partitions_of(topic):
                commit = self.cluster.offset_manager.fetch(self.group, tp)
                if commit is not None:
                    committed[tp] = commit.offset
        return committed

    def observe(self) -> LagSample:
        """Take one sample at the current simulated instant.

        The rate EWMA is fed with (position advance / elapsed time) between
        consecutive samples; two samples at the same instant feed nothing.
        """
        # Let in-flight replication advance high watermarks first, so the
        # observed end offsets reflect everything readable right now.
        self.cluster.tick(0.0)
        now = self.cluster.clock.now()
        positions = self._current_positions()
        lag: dict[TopicPartition, int] = {}
        consumed_total = 0
        for topic in self.topics:
            for tp in self.cluster.partitions_of(topic):
                position = positions.get(tp)
                try:
                    end = self.cluster.end_offset(tp)
                except BrokerUnavailableError:
                    # Failover in flight: hold the last known lag steady.
                    lag[tp] = self._last_lag.get(tp, 0)
                    if position is not None:
                        consumed_total += position
                    continue
                if position is None:
                    # Never consumed: the whole readable range is lag.
                    begin = self.cluster.beginning_offset(tp)
                    lag[tp] = max(0, end - begin)
                else:
                    lag[tp] = max(0, end - position)
                    consumed_total += position
        if self._last_at is not None and self._last_consumed is not None:
            elapsed = now - self._last_at
            if elapsed > 0:
                advanced = max(0, consumed_total - self._last_consumed)
                self.rate_ewma.update(advanced / elapsed)
        self._last_at = now
        self._last_consumed = consumed_total
        self._last_lag = lag
        sample = LagSample(at=now, lag_by_partition=dict(lag),
                           rate=self.rate_ewma.value)
        self._g_lag.set(float(sample.total_lag))
        self._g_rate.set(sample.rate)
        return sample

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LagMonitor(group={self.group!r}, topics={self.topics}, "
            f"rate={self.rate_ewma.value:.3f})"
        )
