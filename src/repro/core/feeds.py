"""Feeds: the data-integration abstraction over topics (§3).

"The two layers communicate by writing and reading data to and from two
types of feeds, stored in the messaging layer: source-of-truth feeds
represent primary data, i.e. data that is not generated within the system;
and derived data feeds contain results from processed source-of-truth feeds
or other derived feeds.  Derived feeds contain lineage information, i.e.
annotations about how the data was computed."

The registry enforces exactly that split: source-of-truth feeds have no
lineage; derived feeds must name their producing job, their input feeds
(which must already exist — no cycles), and the software version that
computed them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import networkx as nx

from repro.common.errors import (
    FeedAlreadyExistsError,
    FeedNotFoundError,
    LineageError,
)

#: Feed kinds.
SOURCE_OF_TRUTH = "source_of_truth"
DERIVED = "derived"


@dataclass(frozen=True)
class Lineage:
    """How a derived feed's data was computed."""

    produced_by: str                  # job name
    inputs: tuple[str, ...]           # parent feed names
    software_version: str = "v1"
    description: str = ""
    created_at: float = 0.0


@dataclass(frozen=True)
class Feed:
    """A registered feed: a topic plus integration metadata."""

    name: str
    kind: str
    lineage: Lineage | None = None

    @property
    def is_source_of_truth(self) -> bool:
        return self.kind == SOURCE_OF_TRUTH


class FeedRegistry:
    """Tracks every feed in the stack and its provenance."""

    def __init__(self) -> None:
        self._feeds: dict[str, Feed] = {}

    # -- registration --------------------------------------------------------------

    def register_source(self, name: str) -> Feed:
        """Register primary data entering the system from outside."""
        self._check_new(name)
        feed = Feed(name=name, kind=SOURCE_OF_TRUTH)
        self._feeds[name] = feed
        return feed

    def register_derived(
        self,
        name: str,
        produced_by: str,
        inputs: list[str] | tuple[str, ...],
        software_version: str = "v1",
        description: str = "",
        created_at: float = 0.0,
    ) -> Feed:
        """Register a feed computed by a job from existing feeds."""
        self._check_new(name)
        if not inputs:
            raise LineageError(f"derived feed {name!r} must declare inputs")
        missing = [parent for parent in inputs if parent not in self._feeds]
        if missing:
            raise LineageError(
                f"derived feed {name!r} references unknown inputs {missing}"
            )
        if name in inputs:
            raise LineageError(f"feed {name!r} cannot derive from itself")
        feed = Feed(
            name=name,
            kind=DERIVED,
            lineage=Lineage(
                produced_by=produced_by,
                inputs=tuple(inputs),
                software_version=software_version,
                description=description,
                created_at=created_at,
            ),
        )
        self._feeds[name] = feed
        return feed

    def _check_new(self, name: str) -> None:
        if not name:
            raise LineageError("feed name must be non-empty")
        if name in self._feeds:
            raise FeedAlreadyExistsError(name)

    # -- queries -----------------------------------------------------------------------

    def get(self, name: str) -> Feed:
        feed = self._feeds.get(name)
        if feed is None:
            raise FeedNotFoundError(name)
        return feed

    def __contains__(self, name: str) -> bool:
        return name in self._feeds

    def __iter__(self) -> Iterator[Feed]:
        return iter(self._feeds.values())

    def __len__(self) -> int:
        return len(self._feeds)

    def names(self) -> list[str]:
        return sorted(self._feeds)

    def sources(self) -> list[Feed]:
        return [f for f in self._feeds.values() if f.is_source_of_truth]

    def derived(self) -> list[Feed]:
        return [f for f in self._feeds.values() if not f.is_source_of_truth]

    # -- lineage traversal -----------------------------------------------------------------

    def ancestors(self, name: str) -> list[str]:
        """All feeds this feed (transitively) derives from, sources first."""
        feed = self.get(name)
        seen: list[str] = []
        self._walk_up(feed, seen)
        return seen

    def _walk_up(self, feed: Feed, seen: list[str]) -> None:
        if feed.lineage is None:
            return
        for parent_name in feed.lineage.inputs:
            parent = self.get(parent_name)
            self._walk_up(parent, seen)
            if parent_name not in seen:
                seen.append(parent_name)

    def provenance(self, name: str) -> list[Lineage]:
        """The chain of computations from sources to this feed."""
        chain = []
        for ancestor in self.ancestors(name) + [name]:
            lineage = self.get(ancestor).lineage
            if lineage is not None:
                chain.append(lineage)
        return chain

    def consumers_of(self, name: str) -> list[str]:
        """Derived feeds computed (directly) from this feed."""
        self.get(name)
        return sorted(
            f.name
            for f in self._feeds.values()
            if f.lineage is not None and name in f.lineage.inputs
        )

    def graph(self) -> "nx.DiGraph":
        """Feed-derivation DAG (edges point data-flow-wise: parent→child)."""
        graph = nx.DiGraph()
        for feed in self._feeds.values():
            graph.add_node(feed.name, kind=feed.kind)
            if feed.lineage is not None:
                for parent in feed.lineage.inputs:
                    graph.add_edge(parent, feed.name, job=feed.lineage.produced_by)
        return graph
