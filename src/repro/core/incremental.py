"""Incremental processing of slowly-growing feeds (§4.2).

"Consider the problem of maintaining statistics about the data for a given
topic that is periodically updated ... reading all data each time that it
changes would be infeasible — the required time would increase linearly with
data size.  Instead, the processing layer can read the available data,
compute such statistics and maintain them as state.  After consuming some
data, the processing layer checkpoints the offsets in the offset manager.
When new data arrives, it fetches the offsets from the offset manager and
reads only the new data, appending new results to its state."

:class:`IncrementalFold` is that pattern as a reusable component, and
:meth:`IncrementalFold.recompute_from_scratch` is the full-recompute
baseline E3 compares it against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generic, TypeVar

from repro.common.records import ConsumerRecord, TopicPartition
from repro.messaging.cluster import MessagingCluster

S = TypeVar("S")  # state type


@dataclass
class UpdateReport:
    """Cost and volume of one update pass."""

    records_read: int
    simulated_seconds: float
    from_scratch: bool


class IncrementalFold(Generic[S]):
    """Maintains ``state = fold(state, record)`` over a feed incrementally.

    Positions are checkpointed in the offset manager under ``group`` with
    the fold's ``version`` annotation, so a restarted process resumes where
    it left off, and a *changed* fold (new version) can choose to recompute.
    """

    def __init__(
        self,
        cluster: MessagingCluster,
        topic: str,
        group: str,
        init: Callable[[], S],
        fold: Callable[[S, ConsumerRecord], S],
        version: str = "v1",
        batch: int = 500,
    ) -> None:
        self.cluster = cluster
        self.topic = topic
        self.group = group
        self.init = init
        self.fold = fold
        self.version = version
        self.batch = batch
        self.state: S = init()
        self._positions: dict[TopicPartition, int] = {}
        self._seed_positions()

    def _seed_positions(self) -> None:
        """Resume from checkpoints (the §4.2 'fetch the offsets' step)."""
        for tp in self.cluster.partitions_of(self.topic):
            commit = self.cluster.offset_manager.fetch(self.group, tp)
            self._positions[tp] = (
                commit.offset if commit is not None else self.cluster.beginning_offset(tp)
            )

    # -- incremental path ---------------------------------------------------------------

    def update(self) -> UpdateReport:
        """Fold in only the records appended since the last update."""
        records_read, latency = self._fold_from(self._positions)
        return UpdateReport(records_read, latency, from_scratch=False)

    def _fold_from(self, positions: dict[TopicPartition, int]) -> tuple[int, float]:
        records_read = 0
        latency = 0.0
        for tp in self.cluster.partitions_of(self.topic):
            position = positions[tp]
            end = self.cluster.end_offset(tp)
            while position < end:
                result = self.cluster.fetch(
                    tp.topic, tp.partition, position, self.batch
                )
                latency += result.latency
                for record in result.records:
                    self.state = self.fold(self.state, record)
                    latency += self.cluster.cost_model.cpu_per_message
                records_read += len(result.records)
                if result.next_offset <= position:
                    break
                position = result.next_offset
            self._positions[tp] = position
            self.cluster.offset_manager.commit(
                self.group, tp, position, {"software_version": self.version}
            )
        return records_read, latency

    # -- full-recompute baseline ------------------------------------------------------------

    def recompute_from_scratch(self) -> UpdateReport:
        """Rebuild the state by re-reading the entire retained feed.

        This is what a back-end system without incremental support must do
        on every change — the cost that "would increase linearly with data
        size"."""
        self.state = self.init()
        start_positions = {
            tp: self.cluster.beginning_offset(tp)
            for tp in self.cluster.partitions_of(self.topic)
        }
        records_read, latency = self._fold_from(start_positions)
        return UpdateReport(records_read, latency, from_scratch=True)

    def positions(self) -> dict[TopicPartition, int]:
        return dict(self._positions)
