"""Reusable ETL task library (§1, §3.2).

"This layer can perform arbitrary data processing before passing data to
back-end systems, ranging from data cleaning and normalization, to the
computation of aggregate statistics or the detection of anomalies in the
data."

These are the building blocks examples and benchmarks compose into
pipelines; each is a :class:`~repro.processing.task.StreamTask`.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.common.errors import ConfigError
from repro.common.records import ConsumerRecord
from repro.processing.task import MessageCollector, TaskContext


class MapTask:
    """Apply a function to every record's value; emit to ``output``.

    The identity-function instance is the unit of pipeline-depth experiments
    (E2): each extra stage is one more hop through the log.
    """

    def __init__(
        self,
        output: str,
        fn: Callable[[Any], Any] = lambda value: value,
        preserve_timestamp: bool = True,
    ) -> None:
        self.output = output
        self.fn = fn
        self.preserve_timestamp = preserve_timestamp

    def process(self, record: ConsumerRecord, collector: MessageCollector) -> None:
        collector.send(
            self.output,
            self.fn(record.value),
            key=record.key,
            timestamp=record.timestamp if self.preserve_timestamp else None,
        )


class FilterTask:
    """Forward only records whose value satisfies the predicate."""

    def __init__(self, output: str, predicate: Callable[[Any], bool]) -> None:
        self.output = output
        self.predicate = predicate

    def process(self, record: ConsumerRecord, collector: MessageCollector) -> None:
        if self.predicate(record.value):
            collector.send(
                self.output, record.value, key=record.key, timestamp=record.timestamp
            )


class CleaningTask:
    """Field-level cleaning/normalization (§5.1 data cleaning use case).

    ``rules`` maps field name → normalizer.  Records the applied algorithm
    version in the output headers so downstream consumers can tell which
    algorithm cleaned each record — the property that §5.1 says mixed
    pipelines lacked.
    """

    def __init__(
        self,
        output: str,
        rules: dict[str, Callable[[Any], Any]],
        version: str = "v1",
        drop_malformed: bool = True,
    ) -> None:
        self.output = output
        self.rules = rules
        self.version = version
        self.drop_malformed = drop_malformed
        self.dropped = 0

    def process(self, record: ConsumerRecord, collector: MessageCollector) -> None:
        value = record.value
        if not isinstance(value, dict):
            if self.drop_malformed:
                self.dropped += 1
                return
            raise ConfigError(f"CleaningTask expects dict values, got {type(value)}")
        cleaned = dict(value)
        for column, normalize in self.rules.items():
            if column in cleaned:
                try:
                    cleaned[column] = normalize(cleaned[column])
                except (ValueError, TypeError):
                    if self.drop_malformed:
                        self.dropped += 1
                        return
                    raise
        collector.send(
            self.output,
            cleaned,
            key=record.key,
            timestamp=record.timestamp,
            headers={"cleaned_by": self.version},
        )


class EnrichTask:
    """Join each record with reference data held in task state.

    The reference table lives in the ``reference`` store (restored from its
    changelog after failures); records with no match pass through with
    ``enriched=False``.
    """

    def __init__(
        self,
        output: str,
        lookup_key: Callable[[Any], Any],
        merge: Callable[[Any, Any], Any],
        store_name: str = "reference",
    ) -> None:
        self.output = output
        self.lookup_key = lookup_key
        self.merge = merge
        self.store_name = store_name
        self._store = None

    def init(self, context: TaskContext) -> None:
        self._store = context.store(self.store_name)

    def process(self, record: ConsumerRecord, collector: MessageCollector) -> None:
        assert self._store is not None, "init() not called"
        reference = self._store.get(self.lookup_key(record.value))
        if reference is not None:
            value = self.merge(record.value, reference)
        else:
            value = dict(record.value) if isinstance(record.value, dict) else record.value
            if isinstance(value, dict):
                value["enriched"] = False
        collector.send(self.output, value, key=record.key, timestamp=record.timestamp)


class GroupCountTask:
    """Count records per group key; emit running counts (stateful).

    ``group_fn`` extracts the grouping dimension from the value (location,
    CDN, page, ... — the §5.1 site-speed groupings).
    """

    def __init__(
        self,
        output: str,
        group_fn: Callable[[Any], Any],
        store_name: str = "counts",
    ) -> None:
        self.output = output
        self.group_fn = group_fn
        self.store_name = store_name
        self._store = None

    def init(self, context: TaskContext) -> None:
        self._store = context.store(self.store_name)

    def process(self, record: ConsumerRecord, collector: MessageCollector) -> None:
        assert self._store is not None, "init() not called"
        group = self.group_fn(record.value)
        count = self._store.get_or_default(group, 0) + 1
        self._store.put(group, count)
        collector.send(
            self.output,
            {"group": group, "count": count},
            key=group,
            timestamp=record.timestamp,
        )


class RouterTask:
    """Route records to different output topics by a classification function.

    ``route_fn(value) -> topic-or-None``; ``None`` drops the record.
    """

    def __init__(self, route_fn: Callable[[Any], str | None]) -> None:
        self.route_fn = route_fn

    def process(self, record: ConsumerRecord, collector: MessageCollector) -> None:
        topic = self.route_fn(record.value)
        if topic is not None:
            collector.send(
                topic, record.value, key=record.key, timestamp=record.timestamp
            )


class AnomalyDetectorTask:
    """Flag values deviating from a per-key running mean (§5.1 operational
    analysis / site-speed anomaly detection).

    Keeps per-key exponential moving averages of a metric in state and emits
    an alert when a sample exceeds ``threshold`` × the moving average.
    """

    def __init__(
        self,
        output: str,
        metric_fn: Callable[[Any], float],
        key_fn: Callable[[Any], Any],
        threshold: float = 3.0,
        alpha: float = 0.2,
        min_samples: int = 5,
        store_name: str = "baselines",
    ) -> None:
        if threshold <= 1.0:
            raise ConfigError("threshold must be > 1.0")
        if not 0 < alpha <= 1:
            raise ConfigError("alpha must be in (0, 1]")
        self.output = output
        self.metric_fn = metric_fn
        self.key_fn = key_fn
        self.threshold = threshold
        self.alpha = alpha
        self.min_samples = min_samples
        self.store_name = store_name
        self._store = None

    def init(self, context: TaskContext) -> None:
        self._store = context.store(self.store_name)

    def process(self, record: ConsumerRecord, collector: MessageCollector) -> None:
        assert self._store is not None, "init() not called"
        key = self.key_fn(record.value)
        sample = self.metric_fn(record.value)
        entry = self._store.get_or_default(key, {"ema": sample, "n": 0})
        ema, n = entry["ema"], entry["n"]
        if n >= self.min_samples and sample > self.threshold * ema:
            collector.send(
                self.output,
                {
                    "key": key,
                    "sample": sample,
                    "baseline": ema,
                    "factor": sample / ema if ema else float("inf"),
                },
                key=key,
                timestamp=record.timestamp,
            )
        new_ema = (1 - self.alpha) * ema + self.alpha * sample
        self._store.put(key, {"ema": new_ema, "n": n + 1})


class DeduplicateTask:
    """Application-side duplicate detection (§4.3).

    "the messaging layer provides at-least-once delivery semantics ... This
    is sufficient for applications that only handle keyed data with
    idempotent updates, because duplicates can be detected easily by the
    application."  This task IS that detection: it remembers recently seen
    record ids in changelogged state and forwards each id once.

    ``id_fn`` extracts the identity (defaults to the record key);
    ``ttl_seconds`` bounds state growth by expiring old ids.
    """

    def __init__(
        self,
        output: str,
        id_fn: Callable[[Any], Any] | None = None,
        ttl_seconds: float = 3600.0,
        store_name: str = "seen",
    ) -> None:
        if ttl_seconds <= 0:
            raise ConfigError("ttl_seconds must be > 0")
        self.output = output
        self.id_fn = id_fn
        self.ttl_seconds = ttl_seconds
        self.store_name = store_name
        self.duplicates_dropped = 0
        self._store = None

    def init(self, context: TaskContext) -> None:
        self._store = context.store(self.store_name)

    def process(self, record: ConsumerRecord, collector: MessageCollector) -> None:
        assert self._store is not None, "init() not called"
        record_id = (
            self.id_fn(record.value) if self.id_fn is not None else record.key
        )
        seen_at = self._store.get(record_id)
        if seen_at is not None and record.timestamp - seen_at <= self.ttl_seconds:
            self.duplicates_dropped += 1
            return
        self._store.put(record_id, record.timestamp)
        collector.send(
            self.output, record.value, key=record.key, timestamp=record.timestamp
        )


class StreamTableJoinTask:
    """Join a stream against a table maintained from a second feed.

    The Samza pattern behind the paper's enrichment pipelines: the task
    consumes partition *i* of both the stream topic and the (keyed,
    compactable) table topic.  Table records upsert local state; stream
    records join against it.  Both feeds must be partitioned by the join
    key so co-partitioning holds.
    """

    def __init__(
        self,
        output: str,
        table_topic: str,
        join_key: Callable[[Any], Any],
        merge: Callable[[Any, Any], Any],
        emit_unmatched: bool = False,
        store_name: str = "table",
    ) -> None:
        self.output = output
        self.table_topic = table_topic
        self.join_key = join_key
        self.merge = merge
        self.emit_unmatched = emit_unmatched
        self.store_name = store_name
        self.unmatched = 0
        self._store = None

    def init(self, context: TaskContext) -> None:
        self._store = context.store(self.store_name)

    def process(self, record: ConsumerRecord, collector: MessageCollector) -> None:
        assert self._store is not None, "init() not called"
        if record.topic == self.table_topic:
            if record.value is None:
                self._store.delete(record.key)
            else:
                self._store.put(record.key, record.value)
            return
        reference = self._store.get(self.join_key(record.value))
        if reference is None:
            self.unmatched += 1
            if self.emit_unmatched:
                collector.send(
                    self.output, record.value, key=record.key,
                    timestamp=record.timestamp,
                )
            return
        collector.send(
            self.output,
            self.merge(record.value, reference),
            key=record.key,
            timestamp=record.timestamp,
        )


class WindowedStreamJoinTask:
    """Event-time windowed join of two co-partitioned streams.

    Records from either side are buffered per join key; a pair is emitted
    when both sides have a record within ``window_seconds`` of each other.
    Buffered entries older than the window are garbage-collected as newer
    events arrive (per-key event time is monotone on keyed partitions).
    """

    def __init__(
        self,
        output: str,
        left_topic: str,
        right_topic: str,
        merge: Callable[[Any, Any], Any],
        window_seconds: float = 60.0,
        store_name: str = "buffers",
    ) -> None:
        if window_seconds <= 0:
            raise ConfigError("window_seconds must be > 0")
        self.output = output
        self.left_topic = left_topic
        self.right_topic = right_topic
        self.merge = merge
        self.window_seconds = window_seconds
        self.store_name = store_name
        self._store = None

    def init(self, context: TaskContext) -> None:
        self._store = context.store(self.store_name)

    def process(self, record: ConsumerRecord, collector: MessageCollector) -> None:
        assert self._store is not None, "init() not called"
        if record.topic == self.left_topic:
            mine, theirs = "left", "right"
        elif record.topic == self.right_topic:
            mine, theirs = "right", "left"
        else:
            raise ConfigError(
                f"record from unexpected topic {record.topic!r}; joined "
                f"topics are {self.left_topic!r} and {self.right_topic!r}"
            )
        buffers = self._store.get_or_default(
            record.key, {"left": [], "right": []}
        )
        horizon = record.timestamp - self.window_seconds
        buffers = {
            side: [e for e in entries if e["ts"] >= horizon]
            for side, entries in buffers.items()
        }
        for other in buffers[theirs]:
            left_value = record.value if mine == "left" else other["value"]
            right_value = other["value"] if mine == "left" else record.value
            collector.send(
                self.output,
                self.merge(left_value, right_value),
                key=record.key,
                timestamp=record.timestamp,
            )
        buffers[mine] = buffers[mine] + [
            {"ts": record.timestamp, "value": record.value}
        ]
        self._store.put(record.key, buffers)
