"""The Liquid stack: messaging + processing behind one facade (§3).

This is the paper's contribution assembled: a nearline data integration
stack where

* producers publish *source-of-truth feeds* into the messaging layer;
* ETL-like jobs, submitted centrally ("ETL-as-a-service"), derive new feeds
  with recorded lineage;
* back-end systems consume any feed with low latency, rewind by time or by
  annotation, and process incrementally via the offset manager.

A :class:`Liquid` instance owns one messaging cluster, one group
coordinator, a feed registry, a dataflow of submitted jobs, and (optionally)
isolated container hosts for those jobs.
"""

from __future__ import annotations

import warnings

from dataclasses import replace
from typing import Any, Iterable

from repro.common.clock import Clock, SimClock
from repro.common.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.common.errors import ConfigError, FeedNotFoundError
from repro.common.records import TopicPartition
from repro.messaging.cluster import MessagingCluster
from repro.messaging.config import ConsumerConfig, ProducerConfig
from repro.messaging.consumer import Consumer
from repro.messaging.consumer_group import GroupCoordinator
from repro.messaging.producer import Producer
from repro.messaging.topic import SYSTEM_TOPIC_PREFIX, TopicConfig, is_system_topic
from repro.processing.containers import IsolatedHost, ResourceQuota
from repro.processing.dataflow import Dataflow
from repro.processing.job import JobConfig, JobRunner
from repro.core.access import (
    OP_CREATE,
    OP_READ,
    OP_WRITE,
    AccessController,
    SecureConsumer,
    SecureProducer,
)
from repro.core.annotations import (
    offsets_at_time,
    offsets_committed_before,
    offsets_for_version,
)
from repro.core.feeds import Feed, FeedRegistry
from repro.core.incremental import IncrementalFold

#: Which legacy-kwargs deprecation notices have fired this process; one
#: warning per call site keeps a loop over ``liquid.producer(acks="all")``
#: from flooding stderr while still steering every distinct caller to the
#: frozen config objects.
_LEGACY_KWARGS_WARNED: set[str] = set()


def _warn_legacy_kwargs(method: str, kwargs: dict[str, Any]) -> None:
    if method in _LEGACY_KWARGS_WARNED:
        return
    _LEGACY_KWARGS_WARNED.add(method)
    config_cls = "ProducerConfig" if method == "producer" else "ConsumerConfig"
    warnings.warn(
        f"Liquid.{method}({', '.join(sorted(kwargs))}=...) with loose keyword "
        f"options is deprecated; pass config={config_cls}(...) instead",
        DeprecationWarning,
        stacklevel=3,
    )


class Liquid:
    """A complete Liquid deployment (one messaging + one processing layer)."""

    def __init__(
        self,
        num_brokers: int = 3,
        clock: Clock | None = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        isolation: bool = True,
        host_cores: int = 8,
        access_control: bool = False,
        **cluster_kwargs: Any,
    ) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.cluster = MessagingCluster(
            num_brokers=num_brokers,
            clock=self.clock,
            cost_model=cost_model,
            **cluster_kwargs,
        )
        self.group_coordinator = GroupCoordinator(self.cluster)
        self.feeds = FeedRegistry()
        self.dataflow = Dataflow(self.cluster)
        self.host = IsolatedHost(cores=host_cores, isolation=isolation)
        self.acl = AccessController(enabled=access_control)
        self._job_quotas: dict[str, ResourceQuota] = {}
        #: Set by :meth:`enable_telemetry`.
        self.telemetry = None

    # -- feeds -------------------------------------------------------------------------

    def create_feed(
        self,
        name: str,
        partitions: int = 1,
        replication_factor: int | None = None,
        principal: str | None = None,
        **topic_kwargs: Any,
    ) -> Feed:
        """Create a source-of-truth feed (topic + registry entry)."""
        if is_system_topic(name):
            raise ConfigError(
                f"feed name {name!r} is reserved: the "
                f"{SYSTEM_TOPIC_PREFIX!r} namespace belongs to system "
                f"feeds (offsets, telemetry)"
            )
        if self.acl.enabled:
            self.acl.authorize(principal, OP_CREATE, name)
        if replication_factor is None:
            replication_factor = min(3, len(self.cluster.brokers()))
        self.cluster.create_topic(
            TopicConfig(
                name=name,
                num_partitions=partitions,
                replication_factor=replication_factor,
                **topic_kwargs,
            )
        )
        return self.feeds.register_source(name)

    def _create_derived_feed(
        self,
        name: str,
        job: JobConfig,
        partitions: int,
        description: str,
        **topic_kwargs: Any,
    ) -> Feed:
        if name not in self.cluster.topics():
            self.cluster.create_topic(
                TopicConfig(
                    name=name,
                    num_partitions=partitions,
                    replication_factor=min(3, len(self.cluster.brokers())),
                    **topic_kwargs,
                )
            )
        return self.feeds.register_derived(
            name,
            produced_by=job.name,
            inputs=list(job.inputs),
            software_version=job.version,
            description=description,
            created_at=self.clock.now(),
        )

    def feed(self, name: str) -> Feed:
        return self.feeds.get(name)

    # -- clients ------------------------------------------------------------------------

    def producer(
        self,
        principal: str | None = None,
        config: ProducerConfig | None = None,
        **kwargs: Any,
    ):
        """A producer publishing into the stack's feeds.

        Pass a :class:`~repro.messaging.config.ProducerConfig` (or the
        legacy keyword options, which are deprecated — a one-shot
        ``DeprecationWarning`` fires; unknown ones raise ``ConfigError``).
        With access control enabled, pass the team's ``principal``; writes
        are then checked against its grants.
        """
        if kwargs:
            _warn_legacy_kwargs("producer", kwargs)
        producer = Producer(self.cluster, config=config, **kwargs)
        if self.acl.enabled:
            return SecureProducer(producer, self.acl, principal or "")
        return producer

    def consumer(
        self,
        group: str | None = None,
        principal: str | None = None,
        config: ConsumerConfig | None = None,
        **kwargs: Any,
    ):
        """A consumer for back-end systems; pass ``group`` for queue semantics.

        Accepts a :class:`~repro.messaging.config.ConsumerConfig` or the
        legacy keyword options (deprecated; a one-shot
        ``DeprecationWarning`` fires).  ``group`` may come from either the
        config or the argument (the argument wins if both are given).
        """
        if kwargs:
            _warn_legacy_kwargs("consumer", kwargs)
        if config is not None:
            if group is not None and config.group != group:
                config = replace(config, group=group)
            consumer = Consumer(
                self.cluster,
                config=config,
                group_coordinator=(
                    self.group_coordinator if config.group or group else None
                ),
            )
        else:
            consumer = Consumer(
                self.cluster,
                group=group,
                group_coordinator=self.group_coordinator if group else None,
                **kwargs,
            )
        if self.acl.enabled:
            return SecureConsumer(consumer, self.acl, principal or "")
        return consumer

    # -- ETL-as-a-service (§3.2) ------------------------------------------------------------

    def submit_job(
        self,
        config: JobConfig,
        outputs: Iterable[str] = (),
        output_partitions: int | None = None,
        quota: ResourceQuota | None = None,
        description: str = "",
        principal: str | None = None,
    ) -> JobRunner:
        """Submit an ETL job centrally.

        Inputs must be registered feeds; each output is created as a derived
        feed with lineage.  When a ``quota`` is given the job runs under the
        container host's resource isolation.  With access control enabled
        the submitting ``principal`` needs read grants on every input and
        create grants on every output.
        """
        if self.acl.enabled:
            for topic in config.inputs:
                self.acl.authorize(principal, OP_READ, topic)
            for topic in outputs:
                self.acl.authorize(principal, OP_CREATE, topic)
        for topic in config.inputs:
            if topic not in self.feeds:
                raise FeedNotFoundError(
                    f"job {config.name!r} input {topic!r} is not a registered feed"
                )
        default_partitions = max(
            len(self.cluster.partitions_of(t)) for t in config.inputs
        )
        for output in outputs:
            self._create_derived_feed(
                output,
                config,
                partitions=output_partitions or default_partitions,
                description=description,
            )
        runner = self.dataflow.add_job(config, outputs=outputs)
        if quota is not None:
            self.host.add_job(runner, quota)
            self._job_quotas[config.name] = quota
        return runner

    def process_available(self, max_rounds: int = 1000) -> int:
        """Run all submitted jobs until every feed is drained."""
        return self.dataflow.run_until_idle(max_rounds)

    def run_isolated_quantum(self, dt: float = 0.1):
        """Advance quota-managed jobs by one scheduling quantum (E8)."""
        return self.host.run_quantum(dt)

    # -- rewindability (§3.1/§4.2) -------------------------------------------------------------

    def rewind_to_time(self, feed: str, timestamp: float) -> dict[TopicPartition, int]:
        """Offsets to replay ``feed`` from wall-clock ``timestamp``."""
        self.feeds.get(feed)
        return offsets_at_time(self.cluster, feed, timestamp)

    def rewind_to_version(
        self, feed: str, group: str, version: str
    ) -> dict[TopicPartition, int | None]:
        """Offsets where ``version`` of ``group`` last checkpointed ``feed``."""
        self.feeds.get(feed)
        return offsets_for_version(self.cluster, group, feed, version)

    def rewind_to_commit_time(
        self, feed: str, group: str, timestamp: float
    ) -> dict[TopicPartition, int | None]:
        """Offsets ``group`` had committed on ``feed`` at ``timestamp``."""
        self.feeds.get(feed)
        return offsets_committed_before(self.cluster, group, feed, timestamp)

    # -- incremental processing (§4.2) -------------------------------------------------------------

    def incremental_fold(
        self, feed: str, group: str, init, fold, version: str = "v1"
    ) -> IncrementalFold:
        """An incrementally-maintained fold over a feed."""
        self.feeds.get(feed)
        return IncrementalFold(
            self.cluster, feed, group, init, fold, version=version
        )

    # -- self-hosted telemetry (§5.1) --------------------------------------------------------------

    def enable_telemetry(
        self,
        interval: float = 5.0,
        tracer=None,
        with_slos: bool = False,
        servers: Iterable = (),
    ):
        """Turn on the self-hosted telemetry pipeline.

        Creates the reserved ``__telemetry.*`` topics, registers them as
        source-of-truth feeds (so monitoring jobs can consume them like any
        other feed — the monitor is just another job), and starts a
        :class:`~repro.observability.telemetry.TelemetryExporter` on the
        sim-clock cadence.  With ``with_slos=True`` the exporter also
        samples the standard SLO signals (freshness, lag, ISR availability,
        standby staleness) from this deployment's jobs each cycle and
        publishes burn-rate alerts.  Jobs submitted *after* this call can
        be watched by appending their runners to
        ``exporter.sampler.runners``.
        """
        from repro.observability.slo import attach_standard_slos
        from repro.observability.telemetry import TELEMETRY_FEEDS, TelemetryExporter

        sampler = None
        monitor = None
        if with_slos:
            monitor, sampler = attach_standard_slos(
                self.cluster,
                runners=self.dataflow.runners(),
                servers=servers,
            )
        exporter = TelemetryExporter(
            self.cluster,
            interval=interval,
            tracer=tracer,
            slo_monitor=monitor,
            sampler=sampler,
        )
        # Register directly with the registry: create_feed refuses the
        # system namespace for users, but these feeds *are* the system's.
        for feed in TELEMETRY_FEEDS:
            if feed not in self.feeds:
                self.feeds.register_source(feed)
        exporter.start()
        self.telemetry = exporter
        return exporter

    # -- operations ------------------------------------------------------------------------------------

    def tick(self, dt: float = 0.1) -> None:
        """Advance time: replication, retention, compaction, flush timers."""
        self.cluster.tick(dt)

    def kill_broker(self, broker_id: int) -> None:
        self.cluster.kill_broker(broker_id)

    def restart_broker(self, broker_id: int) -> None:
        self.cluster.restart_broker(broker_id)

    def stats(self) -> dict[str, Any]:
        """Deployment statistics in the shape of the paper's §5 numbers."""
        stats = self.cluster.stats()
        stats.update(
            {
                "feeds": len(self.feeds),
                "source_feeds": len(self.feeds.sources()),
                "derived_feeds": len(self.feeds.derived()),
                "jobs": len(self.dataflow.runners()),
                "processing_tasks": sum(
                    len(r.tasks()) for r in self.dataflow.runners()
                ),
            }
        )
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Liquid(brokers={len(self.cluster.brokers())}, "
            f"feeds={len(self.feeds)}, jobs={len(self.dataflow.runners())})"
        )
