"""Liquid core: the paper's data integration stack behind one facade."""

from repro.core.access import (
    OP_CREATE,
    OP_READ,
    OP_WRITE,
    AccessController,
    AclEntry,
    AuthorizationError,
    SecureConsumer,
    SecureProducer,
)
from repro.core.annotations import (
    annotate_positions,
    offsets_at_time,
    offsets_committed_before,
    offsets_for_version,
)
from repro.core.etl import (
    AnomalyDetectorTask,
    CleaningTask,
    DeduplicateTask,
    EnrichTask,
    FilterTask,
    GroupCountTask,
    MapTask,
    RouterTask,
    StreamTableJoinTask,
    WindowedStreamJoinTask,
)
from repro.core.feeds import DERIVED, SOURCE_OF_TRUTH, Feed, FeedRegistry, Lineage
from repro.core.incremental import IncrementalFold, UpdateReport
from repro.core.liquid import Liquid

__all__ = [
    "Liquid",
    "Feed",
    "FeedRegistry",
    "Lineage",
    "SOURCE_OF_TRUTH",
    "DERIVED",
    "IncrementalFold",
    "UpdateReport",
    "offsets_at_time",
    "offsets_for_version",
    "offsets_committed_before",
    "annotate_positions",
    "MapTask",
    "FilterTask",
    "CleaningTask",
    "EnrichTask",
    "GroupCountTask",
    "RouterTask",
    "AnomalyDetectorTask",
    "DeduplicateTask",
    "StreamTableJoinTask",
    "WindowedStreamJoinTask",
    "AccessController",
    "AclEntry",
    "AuthorizationError",
    "SecureProducer",
    "SecureConsumer",
    "OP_READ",
    "OP_WRITE",
    "OP_CREATE",
]
