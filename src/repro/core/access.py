"""Access control over feeds (§2.1).

"access control is necessary to ensure that no faulty or misconfigured
back-end systems can compromise the data of other applications."

A small ACL model in the shape Kafka later shipped: *principals* (teams,
services) are granted *operations* on *feeds* (exact name, prefix ``x-*``,
or the global wildcard ``*``).  Deny-by-default when enabled; the Liquid
facade threads a ``principal`` through producers, consumers, and job
submission, so a team can only touch the feeds it was granted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.common.errors import AuthorizationError, ConfigError

#: Operations, in the paper's spirit: read a feed, write a feed, create
#: feeds / submit jobs deriving new feeds.
OP_READ = "read"
OP_WRITE = "write"
OP_CREATE = "create"
OPERATIONS = (OP_READ, OP_WRITE, OP_CREATE)

# Backwards-compatible re-export: AuthorizationError moved to the common
# error hierarchy so every library error lives under one module.
__all__ = ["AuthorizationError", "AclEntry", "AccessController",
           "SecureProducer", "SecureConsumer",
           "OP_READ", "OP_WRITE", "OP_CREATE", "OPERATIONS"]


@dataclass(frozen=True)
class AclEntry:
    """One grant: ``principal`` may ``operation`` on ``pattern``.

    ``pattern`` is an exact feed name, a prefix pattern ending in ``*``
    (e.g. ``metrics-*``), or the global wildcard ``*``.
    """

    principal: str
    operation: str
    pattern: str = "*"

    def __post_init__(self) -> None:
        if not self.principal:
            raise ConfigError("principal must be non-empty")
        if self.operation not in OPERATIONS:
            raise ConfigError(
                f"unknown operation {self.operation!r}; known: {OPERATIONS}"
            )
        if not self.pattern:
            raise ConfigError("pattern must be non-empty")

    def matches(self, operation: str, feed: str) -> bool:
        if operation != self.operation:
            return False
        if self.pattern == "*":
            return True
        if self.pattern.endswith("*"):
            return feed.startswith(self.pattern[:-1])
        return feed == self.pattern


class AccessController:
    """Holds grants and answers authorization checks.

    ``enabled=False`` (the default for backward compatibility) allows
    everything; enabling it switches to deny-by-default.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._entries: set[AclEntry] = set()
        self.denials = 0

    # -- administration ------------------------------------------------------------

    def grant(
        self,
        principal: str,
        operations: str | Iterable[str],
        pattern: str = "*",
    ) -> None:
        """Grant one or more operations on a feed pattern."""
        if isinstance(operations, str):
            operations = [operations]
        for operation in operations:
            self._entries.add(AclEntry(principal, operation, pattern))

    def revoke(
        self, principal: str, operation: str, pattern: str = "*"
    ) -> bool:
        """Remove a grant; returns True if it existed."""
        entry = AclEntry(principal, operation, pattern)
        if entry in self._entries:
            self._entries.remove(entry)
            return True
        return False

    def grants_for(self, principal: str) -> list[AclEntry]:
        return sorted(
            (e for e in self._entries if e.principal == principal),
            key=lambda e: (e.operation, e.pattern),
        )

    # -- checks ----------------------------------------------------------------------

    def check(self, principal: str | None, operation: str, feed: str) -> bool:
        """True iff the principal may perform the operation on the feed."""
        if not self.enabled:
            return True
        if principal is None:
            return False
        return any(
            e.principal == principal and e.matches(operation, feed)
            for e in self._entries
        )

    def authorize(self, principal: str | None, operation: str, feed: str) -> None:
        """Raise :class:`AuthorizationError` unless permitted."""
        if not self.check(principal, operation, feed):
            self.denials += 1
            raise AuthorizationError(
                f"principal {principal!r} may not {operation} feed {feed!r}"
            )


class SecureProducer:
    """Producer wrapper enforcing write grants per send."""

    def __init__(self, inner, acl: AccessController, principal: str) -> None:
        self._inner = inner
        self._acl = acl
        self.principal = principal

    def send(self, topic: str, value: Any, **kwargs: Any):
        self._acl.authorize(self.principal, OP_WRITE, topic)
        return self._inner.send(topic, value, **kwargs)

    def flush(self):
        return self._inner.flush()

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


class SecureConsumer:
    """Consumer wrapper enforcing read grants at subscribe/assign time."""

    def __init__(self, inner, acl: AccessController, principal: str) -> None:
        self._inner = inner
        self._acl = acl
        self.principal = principal

    def subscribe(self, topics) -> None:
        for topic in topics:
            self._acl.authorize(self.principal, OP_READ, topic)
        self._inner.subscribe(topics)

    def assign(self, partitions) -> None:
        for tp in partitions:
            self._acl.authorize(self.principal, OP_READ, tp.topic)
        self._inner.assign(partitions)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)
