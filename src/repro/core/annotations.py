"""Rewindability: metadata-based re-positioning of consumers (§3.1, §4.2).

"It annotates data with metadata such as timestamps or software versions,
which back-end systems can use to read from a given point.  This
rewindability property is a crucial building block for incremental
processing and failure recovery."

Two rewind coordinate systems are supported, matching the paper:

* **record time** — "give me everything since Tuesday 09:00" resolves
  through the broker-side timestamp index (:func:`offsets_at_time`);
* **consumer annotations** — "give me everything after the point algorithm
  v1 had processed" resolves through the offset manager's commit metadata
  (:func:`offsets_for_version`).
"""

from __future__ import annotations

from typing import Any

from repro.common.records import TopicPartition
from repro.messaging.cluster import MessagingCluster


def offsets_at_time(
    cluster: MessagingCluster, topic: str, timestamp: float
) -> dict[TopicPartition, int]:
    """Per-partition offsets of the first record at/after ``timestamp``.

    Partitions with no such record map to their end offset (nothing to
    replay there).
    """
    out: dict[TopicPartition, int] = {}
    for tp in cluster.partitions_of(topic):
        offset = cluster.offset_for_timestamp(tp, timestamp)
        out[tp] = offset if offset is not None else cluster.end_offset(tp)
    return out


def offsets_for_version(
    cluster: MessagingCluster, group: str, topic: str, version: str
) -> dict[TopicPartition, int | None]:
    """Per-partition positions that software ``version`` of ``group`` reached.

    Partitions the version never checkpointed map to ``None`` — callers
    decide whether that means "from the beginning" (replay everything) or
    "skip".
    """
    out: dict[TopicPartition, int | None] = {}
    for tp in cluster.partitions_of(topic):
        commit = cluster.offset_manager.offset_for_annotation(
            group, tp, "software_version", version
        )
        out[tp] = commit.offset if commit is not None else None
    return out


def offsets_committed_before(
    cluster: MessagingCluster, group: str, topic: str, timestamp: float
) -> dict[TopicPartition, int | None]:
    """Per-partition positions ``group`` had at wall-clock ``timestamp``.

    The rollback primitive: "rewind this consumer to where it was before the
    bad deploy at 14:00"."""
    out: dict[TopicPartition, int | None] = {}
    for tp in cluster.partitions_of(topic):
        commit = cluster.offset_manager.offset_at_time(group, tp, timestamp)
        out[tp] = commit.offset if commit is not None else None
    return out


def annotate_positions(
    cluster: MessagingCluster,
    group: str,
    positions: dict[TopicPartition, int],
    metadata: dict[str, Any],
) -> None:
    """Checkpoint explicit positions with annotations in one call."""
    for tp, offset in positions.items():
        cluster.offset_manager.commit(group, tp, offset, metadata)
