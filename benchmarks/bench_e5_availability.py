"""E5 — §4.3: availability under failures and the durability trade-off.

"This design guarantees that the messaging layer can tolerate up to N-1
failures with N brokers in the set of ISRs ... the maximum durability is
achieved when a lead broker sends data to all followers and waits for all
acknowledgments; the minimum durability is obtained if acknowledgments are
returned to clients immediately ... The chosen durability level impacts the
throughput and latency of the data integration stack."

Two sub-experiments:

* **durability sweep** — produce latency/throughput across acks ∈
  {none, leader, all} and replication factor ∈ {1, 3};
* **failover run** — leaders are killed mid-stream; acked messages must all
  survive, and the write-unavailability window is reported.  The ablation
  contrasts the plain at-least-once producer (duplicates possible on retry)
  with the idempotent producer (the paper's exactly-once "ongoing effort").
"""

import pytest

from repro.common.clock import SimClock
from repro.common.records import TopicPartition
from repro.messaging.cluster import (
    ACKS_ALL,
    ACKS_LEADER,
    ACKS_NONE,
    MessagingCluster,
)
from repro.messaging.producer import Producer

from reporting import attach, format_table, publish

BATCH = 300


def produce_latency(acks: str, replication: int) -> tuple[float, float]:
    """Returns (mean latency s, throughput msg/s) for one ack mode."""
    cluster = MessagingCluster(num_brokers=3, clock=SimClock())
    cluster.create_topic("t", num_partitions=1, replication_factor=replication)
    producer = Producer(cluster, acks=acks)
    total = 0.0
    for i in range(BATCH):
        ack = producer.send("t", {"i": i})
        total += ack.latency
    return total / BATCH, BATCH / total


def run_durability_sweep() -> dict:
    rows = []
    latencies = {}
    for replication in (1, 3):
        for acks in (ACKS_NONE, ACKS_LEADER, ACKS_ALL):
            mean_latency, throughput = produce_latency(acks, replication)
            latencies[(acks, replication)] = mean_latency
            rows.append(
                [f"rf={replication}", acks, mean_latency * 1e3,
                 f"{throughput:,.0f}"]
            )
    table = format_table(
        "E5a  Durability/latency trade-off (simulated)",
        ["replication", "acks", "mean produce latency (ms)", "throughput msg/s"],
        rows,
        notes=[
            "paper: durability level impacts throughput and latency (4.3)",
        ],
    )
    publish("e5a_durability", table)
    return latencies


def run_failover_run(idempotent: bool) -> dict:
    cluster = MessagingCluster(num_brokers=3, clock=SimClock())
    cluster.create_topic(
        "t", num_partitions=1, replication_factor=3, min_insync_replicas=2
    )
    producer = Producer(
        cluster, acks=ACKS_ALL, max_retries=4, idempotent=idempotent
    )
    acked = []
    kills = 0
    last_victim: int | None = None
    for i in range(200):
        if i in (60, 130):  # rolling leader kills mid-stream
            if last_victim is not None:
                cluster.restart_broker(last_victim)
                cluster.run_until_replicated()
            leader = cluster.leader_of("t", 0)
            cluster.kill_broker(leader)
            last_victim = leader
            kills += 1
            # Emulate the ambiguous-ack retry: the client re-sends its last
            # batch.  The plain producer appends it again (duplicate); the
            # idempotent producer replays the same sequence number and the
            # broker deduplicates.
            retry_entries = [(f"k{i - 1}", {"i": i - 1}, None, {})]
            tp = TopicPartition("t", 0)
            if idempotent:
                cluster.produce(
                    "t", 0, retry_entries, acks=ACKS_ALL,
                    producer_id=producer.producer_id,
                    producer_seq=producer._sequences.get(tp, 0),
                )
            else:
                cluster.produce("t", 0, retry_entries, acks=ACKS_ALL)
        producer.send("t", {"i": i}, key=f"k{i}")
        acked.append(i)
        cluster.tick(0.05)
    for broker_id in range(3):
        if broker_id not in cluster.controller.live_brokers():
            cluster.restart_broker(broker_id)
    cluster.run_until_replicated()
    records, _ = cluster.fetch("t", 0, 0, max_messages=10_000)
    values = [r.value["i"] for r in records]
    lost = [i for i in acked if i not in set(values)]
    duplicates = len(values) - len(set(values))
    return {
        "kills": kills,
        "acked": len(acked),
        "delivered": len(values),
        "lost": len(lost),
        "duplicates": duplicates,
        "retries": producer.retries,
    }


def run_failover_experiment() -> dict:
    plain = run_failover_run(idempotent=False)
    idem = run_failover_run(idempotent=True)
    rows = [
        ["at-least-once", plain["kills"], plain["acked"], plain["delivered"],
         plain["lost"], plain["duplicates"]],
        ["idempotent", idem["kills"], idem["acked"], idem["delivered"],
         idem["lost"], idem["duplicates"]],
    ]
    table = format_table(
        "E5b  Failover: leader kills mid-stream (acks=all, rf=3)",
        ["producer", "leader kills", "acked", "delivered", "acked lost",
         "duplicates"],
        rows,
        notes=[
            "paper: N-1 failure tolerance; at-least-once delivery with "
            "duplicates possible after failures; exactly-once is the "
            "'ongoing effort' (4.3)",
        ],
    )
    publish("e5b_failover", table)
    return {"plain": plain, "idempotent": idem}


class TestE5Shape:
    def test_durability_costs_latency(self):
        latencies = run_durability_sweep()
        # Within rf=3: none < leader < all.
        assert (
            latencies[(ACKS_NONE, 3)]
            < latencies[(ACKS_LEADER, 3)]
            < latencies[(ACKS_ALL, 3)]
        )
        # acks=all is costlier with more replicas to wait for.
        assert latencies[(ACKS_ALL, 3)] > latencies[(ACKS_ALL, 1)]

    def test_no_acked_loss_and_duplicate_behaviour(self):
        results = run_failover_experiment()
        assert results["plain"]["lost"] == 0
        assert results["idempotent"]["lost"] == 0
        # The naive retry duplicates; the idempotent producer does not.
        assert results["plain"]["duplicates"] > 0
        assert results["idempotent"]["duplicates"] == 0


@pytest.mark.benchmark(group="e5")
def test_e5_acks_all_kernel(benchmark):
    cluster = MessagingCluster(num_brokers=3, clock=SimClock())
    cluster.create_topic("t", num_partitions=1, replication_factor=3)
    producer = Producer(cluster, acks=ACKS_ALL)
    counter = iter(range(10**9))

    def produce_one():
        return producer.send("t", {"i": next(counter)}).latency

    simulated = benchmark(produce_one)
    attach(benchmark, simulated_latency_s=simulated)
