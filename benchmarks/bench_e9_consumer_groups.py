"""E9 — §3.1: consumer-group semantics and load balancing.

"only one consumer within each consumer group receives a given message ...
All consumers in CG-2 read data from brokers as if it was a queue, which
helps load-balance the load across the consumers in a consumer group.  [And
across groups] one consumer of each subscribed consumer group is guaranteed
to receive the message."

Two measurements over a 4-partition topic:

* **scaling** — group size 1..8: aggregate drain throughput (simulated)
  grows with members up to the partition count, then plateaus (idle extras);
* **fan-out** — three independent groups each receive the full stream with
  per-group exactly-once delivery.
"""

import pytest

from repro.common.clock import SimClock
from repro.messaging.cluster import ACKS_ALL, MessagingCluster
from repro.messaging.consumer import Consumer
from repro.messaging.consumer_group import GroupCoordinator
from repro.messaging.producer import Producer

from reporting import attach, format_table, publish

PARTITIONS = 4
MESSAGES = 2_000
GROUP_SIZES = [1, 2, 4, 8]


def loaded_cluster() -> MessagingCluster:
    cluster = MessagingCluster(num_brokers=3, clock=SimClock())
    cluster.create_topic("t", num_partitions=PARTITIONS, replication_factor=3)
    producer = Producer(cluster, acks=ACKS_ALL, linger_messages=20)
    for i in range(MESSAGES):
        producer.send("t", {"i": i}, key=f"k{i}")
    producer.flush()
    cluster.tick(0.1)
    return cluster


def drain_time(cluster: MessagingCluster, members: int) -> tuple[float, int]:
    """Simulated time for a group of `members` to drain the topic.

    Members poll round-robin; per round the drain time is the *slowest*
    member's poll latency (they work in parallel).
    """
    gc = GroupCoordinator(cluster)
    consumers = [
        Consumer(cluster, group="g", group_coordinator=gc) for _ in range(members)
    ]
    for consumer in consumers:
        consumer.subscribe(["t"])
    total = 0
    simulated = 0.0
    for _ in range(1000):
        round_latency = 0.0
        round_records = 0
        for consumer in consumers:
            batch = consumer.poll(100)
            round_records += len(batch)
            round_latency = max(round_latency, consumer.last_poll_latency)
        simulated += round_latency
        total += round_records
        if round_records == 0:
            break
    return simulated, total


def run_scaling() -> dict:
    rows = []
    throughputs = {}
    for members in GROUP_SIZES:
        cluster = loaded_cluster()
        simulated, consumed = drain_time(cluster, members)
        throughput = consumed / simulated
        throughputs[members] = throughput
        rows.append([members, consumed, simulated, f"{throughput:,.0f}"])
    table = format_table(
        f"E9a  Group drain throughput vs. members ({PARTITIONS} partitions, "
        "simulated)",
        ["members", "records", "drain time (s)", "throughput msg/s"],
        rows,
        notes=[
            "paper: queue semantics within a group load-balance consumers "
            "(3.1); parallelism is capped by the partition count",
        ],
    )
    publish("e9a_group_scaling", table)
    return throughputs


def run_fanout() -> dict:
    cluster = loaded_cluster()
    gc = GroupCoordinator(cluster)
    deliveries = {}
    for group in ("search", "recs", "metrics"):
        members = [
            Consumer(cluster, group=group, group_coordinator=gc)
            for _ in range(2)
        ]
        for member in members:
            member.subscribe(["t"])
        coords = []
        for _ in range(100):
            round_total = 0
            for member in members:
                batch = member.poll(200)
                round_total += len(batch)
                coords.extend((r.partition, r.offset) for r in batch)
            if round_total == 0:
                break
        deliveries[group] = coords
    rows = [
        [group, len(coords), len(set(coords))]
        for group, coords in deliveries.items()
    ]
    table = format_table(
        "E9b  Fan-out: three independent groups, two members each",
        ["group", "records delivered", "distinct records"],
        rows,
        notes=[
            "paper: each subscribed group receives every message exactly "
            "once across its members (3.1)",
        ],
    )
    publish("e9b_group_fanout", table)
    return deliveries


class TestE9Shape:
    def test_throughput_scales_then_plateaus(self):
        throughputs = run_scaling()
        # Scaling up to the partition count helps substantially...
        assert throughputs[4] > 2.0 * throughputs[1]
        assert throughputs[2] > 1.4 * throughputs[1]
        # ...but extra members beyond partitions cannot help much.
        assert throughputs[8] < 1.5 * throughputs[4]

    def test_every_group_gets_everything_exactly_once(self):
        deliveries = run_fanout()
        for group, coords in deliveries.items():
            assert len(coords) == MESSAGES, group
            assert len(set(coords)) == MESSAGES, group


@pytest.mark.benchmark(group="e9")
def test_e9_drain_kernel(benchmark):
    def drain_with_four():
        cluster = loaded_cluster()
        return drain_time(cluster, 4)[0]

    simulated = benchmark.pedantic(drain_with_four, rounds=2, iterations=1)
    attach(benchmark, simulated_drain_s=simulated)
