"""Ablation A3 — messaging-layer client quotas (§4.5 multi-tenancy).

"Multiple independent teams may be executing different applications on the
same cluster, leading to resource contention.  To retain a given
quality-of-service per application ... Liquid uses a resource management
layer that isolates resources on a per-application basis."

A bulk-loading "hog" application and a latency-sensitive "interactive"
application share the cluster.  Without a quota the hog runs at full speed;
with a byte-rate quota the broker throttles the hog's own acks — its
effective rate converges to the quota while the interactive client's latency
stays at the un-contended baseline in both cases (our simulator has no
shared-bandwidth contention; the measured claim is that throttling is
self-inflicted and precise).
"""

import pytest

from repro.common.clock import SimClock
from repro.common.records import estimate_size
from repro.messaging.cluster import MessagingCluster
from repro.messaging.producer import Producer
from repro.messaging.quotas import ClientQuota

from reporting import attach, format_table, publish

PAYLOAD = {"blob": "x" * 400}
BULK_MESSAGES = 400
QUOTA_BYTES_PER_SEC = 50_000.0


def run_scenario(with_quota: bool) -> dict:
    clock = SimClock()
    cluster = MessagingCluster(num_brokers=1, clock=clock)
    cluster.create_topic("bulk", num_partitions=1, replication_factor=1)
    cluster.create_topic("interactive", num_partitions=1, replication_factor=1)
    if with_quota:
        cluster.quotas.set_quota(
            "bulk-loader", ClientQuota(produce_bytes_per_sec=QUOTA_BYTES_PER_SEC)
        )
    hog = Producer(cluster, client_id="bulk-loader")
    interactive = Producer(cluster, client_id="dashboard")

    hog_seconds = 0.0
    interactive_latencies = []
    for i in range(BULK_MESSAGES):
        ack = hog.send("bulk", PAYLOAD)
        hog_seconds += ack.latency
        clock.advance(ack.latency)  # the throttle delay is real time passing
        if i % 20 == 0:
            ping = interactive.send("interactive", {"q": i})
            interactive_latencies.append(ping.latency)
    payload_bytes = estimate_size(PAYLOAD)
    return {
        "hog_rate_bytes_per_sec": BULK_MESSAGES * payload_bytes / hog_seconds,
        "interactive_mean_ms": 1e3 * sum(interactive_latencies)
        / len(interactive_latencies),
        "throttle_events": cluster.quotas.throttle_events,
    }


def run_experiment() -> dict:
    results = {}
    rows = []
    for with_quota in (False, True):
        result = run_scenario(with_quota)
        results[with_quota] = result
        rows.append(
            [
                "on" if with_quota else "off",
                f"{result['hog_rate_bytes_per_sec']:,.0f}",
                result["throttle_events"],
                result["interactive_mean_ms"],
            ]
        )
    table = format_table(
        "A3  Per-client byte-rate quotas (simulated)",
        ["quota", "hog effective rate (B/s)", "throttle events",
         "interactive mean latency (ms)"],
        rows,
        notes=[
            f"hog quota = {QUOTA_BYTES_PER_SEC:,.0f} B/s; paper 4.5: "
            "per-application isolation at high cluster utilization",
        ],
    )
    publish("a3_client_quotas", table)
    return results


class TestA3Shape:
    def test_quota_caps_hog_rate_precisely(self):
        results = run_experiment()
        unthrottled = results[False]["hog_rate_bytes_per_sec"]
        throttled = results[True]["hog_rate_bytes_per_sec"]
        assert unthrottled > 5 * QUOTA_BYTES_PER_SEC
        # Converges to the configured quota (within 30%).
        assert throttled < 1.3 * QUOTA_BYTES_PER_SEC
        assert results[True]["throttle_events"] > 0
        assert results[False]["throttle_events"] == 0

    def test_neighbour_latency_unchanged(self):
        results = run_experiment()
        assert results[True]["interactive_mean_ms"] == pytest.approx(
            results[False]["interactive_mean_ms"], rel=0.05
        )


@pytest.mark.benchmark(group="a3")
def test_a3_throttled_produce_kernel(benchmark):
    clock = SimClock()
    cluster = MessagingCluster(num_brokers=1, clock=clock)
    cluster.create_topic("bulk", num_partitions=1, replication_factor=1)
    cluster.quotas.set_quota(
        "bulk-loader", ClientQuota(produce_bytes_per_sec=QUOTA_BYTES_PER_SEC)
    )
    producer = Producer(cluster, client_id="bulk-loader")

    def send_one():
        ack = producer.send("bulk", PAYLOAD)
        clock.advance(ack.latency)

    benchmark(send_one)
    attach(benchmark, quota_bytes_per_sec=QUOTA_BYTES_PER_SEC)
