"""Wall-clock microbenchmarks for the batch-vectorized hot paths.

Unlike the E*/A* experiments (which measure *simulated* time and are
bit-reproducible anywhere), this harness measures **real seconds** of the
Python hot loops: tail appends, follower replication, sequential fetch, and
the end-to-end produce→replicate→consume pipeline.  It exists to keep the
ROADMAP north star — "as fast as the hardware allows" — honest: every run
writes ``BENCH_hotpath.json`` at the repo root so successive PRs (and CI)
can compare against the recorded trajectory.

For the append and replication kernels both implementations still exist, so
the harness times them head to head:

* *per_record* — the seed path (one ``append()`` / ``append_stored()`` call
  per message, one page-cache charge each);
* *batched* — the vectorized path (``append_batch`` /
  ``append_stored_batch``: one roll pass, bulk index update, one page-cache
  charge per segment run).

Both arms charge **identical simulated latency** (asserted on every run);
only the wall-clock differs.

Usage::

    PYTHONPATH=src python benchmarks/bench_wallclock.py [--quick] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.common.clock import SimClock  # noqa: E402
from repro.common.records import StoredMessage, TopicPartition  # noqa: E402
from repro.storage.log import LogConfig, PartitionLog  # noqa: E402
from repro.messaging.cluster import ACKS_LEADER, MessagingCluster  # noqa: E402
from repro.messaging.consumer import Consumer  # noqa: E402
from repro.messaging.producer import Producer  # noqa: E402
from repro.processing.job import (  # noqa: E402
    AT_LEAST_ONCE,
    EXACTLY_ONCE,
    JobConfig,
    JobRunner,
)

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_hotpath.json"

#: The batch size the A1 sweep calls its deepest setting; the acceptance
#: target (>=3x wall-clock speedup) is measured at this linger.
LINGER = 200


def _fresh_log() -> PartitionLog:
    return PartitionLog(
        "bench-0", LogConfig(segment_max_messages=2000), clock=SimClock()
    )


def _entries(count: int) -> list[tuple]:
    return [(f"k{i % 100}", {"i": i}, None, None) for i in range(count)]


def _best_of(repeats: int, run) -> tuple[float, float]:
    """Run ``run()`` ``repeats`` times; returns (best wall seconds, last
    simulated latency total)."""
    best = float("inf")
    sim = 0.0
    for _ in range(repeats):
        wall, sim = run()
        best = min(best, wall)
    return best, sim


def bench_append(messages: int, repeats: int) -> dict:
    """Tail append at linger=200: per-record loop vs. append_batch."""
    entries = _entries(messages)

    def per_record() -> tuple[float, float]:
        log = _fresh_log()
        start = time.perf_counter()
        sim = 0.0
        for key, value, _ts, _h in entries:
            sim += log.append(key, value).latency
        return time.perf_counter() - start, sim

    def batched() -> tuple[float, float]:
        log = _fresh_log()
        start = time.perf_counter()
        sim = 0.0
        for base in range(0, messages, LINGER):
            sim += log.append_batch(entries[base : base + LINGER]).latency
        return time.perf_counter() - start, sim

    looped_s, looped_sim = _best_of(repeats, per_record)
    batched_s, batched_sim = _best_of(repeats, batched)
    _check_sim_parity(looped_sim, batched_sim)
    return _compare(messages, looped_s, batched_s, simulated_s=batched_sim)


def bench_replicate(messages: int, repeats: int) -> dict:
    """Follower copy: per-record append_stored vs. append_stored_batch."""
    source = _fresh_log()
    for key, value, _ts, _h in _entries(messages):
        source.append(key, value)
    stored = source.all_messages()
    batch = 500  # ReplicationManager-scale fetch batches

    def per_record() -> tuple[float, float]:
        log = _fresh_log()
        start = time.perf_counter()
        sim = 0.0
        for message in stored:
            sim += log.append_stored(message).latency
        return time.perf_counter() - start, sim

    def batched() -> tuple[float, float]:
        log = _fresh_log()
        start = time.perf_counter()
        sim = 0.0
        for base in range(0, messages, batch):
            sim += log.append_stored_batch(stored[base : base + batch]).latency
        return time.perf_counter() - start, sim

    looped_s, looped_sim = _best_of(repeats, per_record)
    batched_s, batched_sim = _best_of(repeats, batched)
    _check_sim_parity(looped_sim, batched_sim)
    return _compare(messages, looped_s, batched_s, simulated_s=batched_sim)


def _check_sim_parity(looped_sim: float, batched_sim: float) -> None:
    """Both arms must charge the same simulated time.

    A single ``append_batch`` is bit-identical to its per-record loop (the
    equivalence property tests assert ``==``); here the harness folds
    thousands of *batch totals* vs. thousands of *record totals*, so the
    comparison allows float-regrouping noise at the last-ulp level only.
    """
    if abs(looped_sim - batched_sim) > 1e-9 * max(abs(looped_sim), 1e-12):
        raise AssertionError(
            f"simulated latency diverged: {looped_sim} != {batched_sim}"
        )


def bench_fetch(messages: int, repeats: int) -> dict:
    """Sequential scan of a multi-segment log in 500-record windows."""
    log = _fresh_log()
    entries = _entries(messages)
    for base in range(0, messages, LINGER):
        log.append_batch(entries[base : base + LINGER])

    def scan() -> tuple[float, float]:
        start = time.perf_counter()
        sim = 0.0
        cursor = 0
        while cursor < log.log_end_offset:
            result = log.read(cursor, max_messages=500)
            if not result.messages:
                break
            sim += result.latency
            cursor = result.next_offset
        return time.perf_counter() - start, sim

    wall, sim = _best_of(repeats, scan)
    return {
        "messages": messages,
        "wall_s": round(wall, 6),
        "msgs_per_s": round(messages / wall),
        "simulated_s": sim,
    }


def bench_pipeline(messages: int, repeats: int) -> dict:
    """End to end: produce (linger=200, rf=3) -> replicate -> consume."""

    def run() -> tuple[float, float]:
        cluster = MessagingCluster(num_brokers=3, clock=SimClock())
        cluster.create_topic("t", num_partitions=1, replication_factor=3)
        producer = Producer(cluster, acks=ACKS_LEADER, linger_messages=LINGER)
        consumer = Consumer(cluster, max_poll_messages=500)
        consumer.assign([TopicPartition("t", 0)])
        start = time.perf_counter()
        sim = 0.0
        for i in range(messages):
            ack = producer.send("t", {"i": i})
            if ack is not None:
                sim += ack.latency
        for ack in producer.flush():
            sim += ack.latency
        cluster.run_until_replicated()
        consumed = 0
        while consumed < messages:
            records = consumer.poll()
            if not records:
                cluster.tick(0.0)
                continue
            consumed += len(records)
            sim += consumer.last_poll_latency
        return time.perf_counter() - start, sim

    wall, sim = _best_of(repeats, run)
    return {
        "messages": messages,
        "wall_s": round(wall, 6),
        "msgs_per_s": round(messages / wall),
        "simulated_s": sim,
    }


def _json_ish(i: int) -> dict:
    """A typical tracking-event payload: repetitive field names + enum-ish
    values, the shape the wire-compression target is calibrated against."""
    return {
        "event_type": "page_view" if i % 3 else "click",
        "member_id": f"member-{i % 500:06d}",
        "session_id": f"session-{i % 50:08d}",
        "page_key": f"/feed/updates/{i % 20}",
        "user_agent": "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36",
        "locale": "en_US",
        "properties": {"position": i % 10, "channel": "web", "treatment": "A"},
    }


def _compressed_run(
    messages: int, compression: str, prefetch: bool
) -> tuple[float, float, float]:
    """One produce -> replicate -> consume pass; returns
    (wall seconds, simulated seconds, bytes on the simulated wire)."""
    cluster = MessagingCluster(num_brokers=3, clock=SimClock())
    cluster.create_topic("t", num_partitions=1, replication_factor=3)
    producer = Producer(
        cluster, acks=ACKS_LEADER, linger_messages=LINGER,
        compression=compression,
    )
    consumer = Consumer(
        cluster, max_poll_messages=500, prefetch=prefetch,
        auto_offset_reset="earliest",
    )
    consumer.assign([TopicPartition("t", 0)])
    start = time.perf_counter()
    sim = 0.0
    for i in range(messages):
        ack = producer.send("t", _json_ish(i), key=f"member-{i % 500:06d}")
        if ack is not None:
            sim += ack.latency
    for ack in producer.flush():
        sim += ack.latency
    cluster.run_until_replicated()
    consumed = 0
    while consumed < messages:
        records = consumer.poll()
        if not records:
            cluster.tick(0.0)
            continue
        consumed += len(records)
        sim += consumer.last_poll_latency
        # Simulated application processing between polls: this is the time a
        # prefetched fetch overlaps.
        cluster.clock.advance(1e-4)
    wire = cluster.metrics.counter("messaging.cluster.bytes_on_wire").value
    return time.perf_counter() - start, sim, wire


def bench_compress_pipeline(messages: int, repeats: int) -> dict:
    """End-to-end pipeline, compressed vs. uncompressed wire format.

    The headline number is ``wire_reduction``: simulated bytes-on-wire of
    the ``none`` codec over ``zlib:6`` for JSON-ish payloads (target >=2x).
    ``msgs_per_s`` is the compressed arm's wall-clock throughput so the
    baseline guard also catches the compressed path slowing down.
    """
    best_none, best_zlib = float("inf"), float("inf")
    wire_none = wire_zlib = 0.0
    sim_zlib = 0.0
    for _ in range(repeats):
        wall, _sim, wire_none = _compressed_run(messages, "none", False)
        best_none = min(best_none, wall)
        wall, sim_zlib, wire_zlib = _compressed_run(messages, "zlib:6", False)
        best_zlib = min(best_zlib, wall)
    return {
        "messages": messages,
        "none_s": round(best_none, 6),
        "zlib_s": round(best_zlib, 6),
        "none_msgs_per_s": round(messages / best_none),
        "msgs_per_s": round(messages / best_zlib),
        "bytes_on_wire_none": wire_none,
        "bytes_on_wire_zlib": wire_zlib,
        "wire_reduction": round(wire_none / max(wire_zlib, 1.0), 2),
        "simulated_s": sim_zlib,
    }


def bench_fetch_prefetch(messages: int, repeats: int) -> dict:
    """Consumer drain with and without prefetch sessions.

    Both arms consume the identical compressed log; the prefetch arm issues
    fetch N+1 while the application 'processes' poll N (a simulated-clock
    advance between polls), so its simulated consume latency drops while
    delivering the same records.
    """
    best_sync, best_pre = float("inf"), float("inf")
    sim_sync = sim_pre = 0.0
    for _ in range(repeats):
        wall, sim_sync, _w = _compressed_run(messages, "zlib:6", False)
        best_sync = min(best_sync, wall)
        wall, sim_pre, _w = _compressed_run(messages, "zlib:6", True)
        best_pre = min(best_pre, wall)
    return {
        "messages": messages,
        "sync_s": round(best_sync, 6),
        "prefetch_s": round(best_pre, 6),
        "msgs_per_s": round(messages / best_pre),
        "simulated_sync_s": sim_sync,
        "simulated_prefetch_s": sim_pre,
        "simulated_saving_s": round(sim_sync - sim_pre, 9),
    }


class _BenchTagTask:
    """Re-emit each input on its own partition — the §4.3 pipeline kernel."""

    def process(self, record, collector):
        collector.send(
            "out", record.value, key=record.key, partition=record.partition
        )


def _job_run(messages: int, guarantee: str) -> tuple[float, float]:
    """Drain ``messages`` through a pipeline job under ``guarantee``;
    returns (wall seconds, simulated seconds charged to the job clock)."""
    cluster = MessagingCluster(num_brokers=3, clock=SimClock())
    cluster.create_topic("in", num_partitions=2, replication_factor=3)
    cluster.create_topic("out", num_partitions=2, replication_factor=3)
    producer = Producer(cluster, acks=ACKS_LEADER, linger_messages=LINGER)
    for i in range(messages):
        producer.send("in", {"i": i}, key=f"k{i % 100}", partition=i % 2)
    producer.flush()
    cluster.run_until_replicated()
    runner = JobRunner(
        JobConfig(
            name="bench",
            inputs=["in"],
            task_factory=_BenchTagTask,
            checkpoint_interval=500,
            processing_guarantee=guarantee,
        ),
        cluster,
    )
    sim_start = cluster.clock.now()
    start = time.perf_counter()
    runner.run_until_idle()
    return time.perf_counter() - start, cluster.clock.now() - sim_start


def bench_exactly_once(messages: int, repeats: int) -> dict:
    """The same pipeline job at-least-once vs. exactly-once.

    The headline number is ``eo_overhead``: the exactly-once arm's simulated
    latency over the at-least-once arm's on identical input (acceptance
    ceiling <=1.5x — transactions stage every output at acks=all and pay
    commit markers at each checkpoint, but must not dominate the pipeline).
    """
    best_alo, best_eo = float("inf"), float("inf")
    sim_alo = sim_eo = 0.0
    for _ in range(repeats):
        wall, sim_alo = _job_run(messages, AT_LEAST_ONCE)
        best_alo = min(best_alo, wall)
        wall, sim_eo = _job_run(messages, EXACTLY_ONCE)
        best_eo = min(best_eo, wall)
    return {
        "messages": messages,
        "at_least_once_s": round(best_alo, 6),
        "exactly_once_s": round(best_eo, 6),
        "msgs_per_s": round(messages / best_eo),
        "simulated_alo_s": round(sim_alo, 9),
        "simulated_eo_s": round(sim_eo, 9),
        "eo_overhead": round(sim_eo / max(sim_alo, 1e-12), 3),
    }


def _telemetry_job_run(
    messages: int, interval: float | None
) -> tuple[float, float, float, int]:
    """One pipeline-job drain, optionally with the telemetry exporter armed;
    returns (wall seconds, exporter publish wall seconds, simulated
    seconds, export cycles fired)."""
    import gc

    from repro.observability.telemetry import TelemetryExporter

    # Earlier kernels leave the young generation near a collection
    # threshold; start each arm from the same GC state so a pass doesn't
    # land in one arm only.
    gc.collect()
    cluster = MessagingCluster(num_brokers=3, clock=SimClock())
    cluster.create_topic("in", num_partitions=2, replication_factor=3)
    cluster.create_topic("out", num_partitions=2, replication_factor=3)
    producer = Producer(cluster, acks=ACKS_LEADER, linger_messages=LINGER)
    for i in range(messages):
        producer.send("in", {"i": i}, key=f"k{i % 100}", partition=i % 2)
    producer.flush()
    cluster.run_until_replicated()
    runner = JobRunner(
        JobConfig(
            name="bench",
            inputs=["in"],
            task_factory=_BenchTagTask,
            checkpoint_interval=500,
        ),
        cluster,
    )
    exporter = None
    if interval is not None:
        exporter = TelemetryExporter(cluster, interval=interval)
        exporter.start()
    sim_start = cluster.clock.now()
    start = time.perf_counter()
    runner.run_until_idle()
    wall = time.perf_counter() - start
    publish_wall = exporter.publish_wall_s if exporter is not None else 0.0
    cycles = exporter.cycles if exporter is not None else 0
    return wall, publish_wall, cluster.clock.now() - sim_start, cycles


def bench_telemetry(messages: int, repeats: int) -> dict:
    """The pipeline job with the telemetry exporter off vs. on.

    The headline number is ``telemetry_overhead``: how much wall time the
    exporter added to the monitored run, measured *within* that run — the
    exporter self-times its publish cycles (``publish_wall_s``), so the
    workload portion and the exporter portion share identical machine
    conditions and the ratio is stable where a cross-run off/on quotient
    drowns in scheduler noise.  Acceptance ceiling 1.05x: metric deltas are
    O(instruments) per cycle, not O(records), so self-observation must stay
    inside 5%.  ``off_s``/``on_s`` (cross-run, best-of) are reported for
    context.  The export interval adapts to the workload: ~32 cycles
    across the job's simulated duration, so shrinking ``--quick`` counts
    cannot shrink the exporter's duty cycle.
    """
    repeats = max(repeats, 3)
    _, _pub, sim_duration, _c = _telemetry_job_run(messages, None)  # warm
    interval = max(sim_duration / 32, 1e-6)
    best_off, best_on = float("inf"), float("inf")
    overhead = float("inf")
    cycles = 0
    for _ in range(repeats):
        off_wall, _pub, _sim, _c = _telemetry_job_run(messages, None)
        best_off = min(best_off, off_wall)
        on_wall, publish_wall, _sim, cycles = _telemetry_job_run(
            messages, interval
        )
        best_on = min(best_on, on_wall)
        overhead = min(overhead, on_wall / max(on_wall - publish_wall, 1e-12))
    return {
        "messages": messages,
        "off_s": round(best_off, 6),
        "on_s": round(best_on, 6),
        "msgs_per_s": round(messages / best_on),
        "export_interval_s": round(interval, 9),
        "export_cycles": cycles,
        "telemetry_overhead": round(overhead, 3),
    }


def _compare(messages: int, per_record_s: float, batched_s: float,
             simulated_s: float) -> dict:
    return {
        "messages": messages,
        "per_record_s": round(per_record_s, 6),
        "batched_s": round(batched_s, 6),
        "per_record_msgs_per_s": round(messages / per_record_s),
        "batched_msgs_per_s": round(messages / batched_s),
        "speedup": round(per_record_s / batched_s, 2),
        "simulated_s": simulated_s,
    }


def run_all(quick: bool) -> dict:
    messages = 5_000 if quick else 50_000
    repeats = 1 if quick else 3
    kernels = {}
    print(f"bench_wallclock: {messages} msgs/kernel, best of {repeats}")
    for name, fn in (
        ("append_linger200", bench_append),
        ("replicate_batch", bench_replicate),
        ("fetch_scan", bench_fetch),
        ("pipeline_e2e", bench_pipeline),
        ("compress_pipeline", bench_compress_pipeline),
        ("fetch_prefetch", bench_fetch_prefetch),
        ("exactly_once_job", bench_exactly_once),
        ("telemetry", bench_telemetry),
    ):
        if name in (
            "pipeline_e2e",
            "compress_pipeline",
            "fetch_prefetch",
            "exactly_once_job",
            "telemetry",
        ):
            count = max(messages // 5, 2_000)
        else:
            count = messages
        kernels[name] = fn(count, repeats)
        line = f"  {name:18s} " + ", ".join(
            f"{k}={v}" for k, v in kernels[name].items() if k != "messages"
        )
        print(line)
    return {
        "schema": "bench_hotpath/v1",
        "quick": quick,
        "python": platform.python_version(),
        "linger": LINGER,
        "kernels": kernels,
    }


def _rate(kernel: dict) -> float:
    """The kernel's headline throughput (batched arm where there is one)."""
    return kernel.get("batched_msgs_per_s", kernel.get("msgs_per_s", 0.0))


def _check_baseline(
    report: dict, baseline_path: pathlib.Path, max_slowdown: float
) -> list[str]:
    """Compare per-kernel throughput against a recorded baseline report.

    The guard catches *hot-path regressions* — e.g. a disarmed tracing hook
    that stopped being one cheap check — not machine-to-machine variance,
    so the tolerance is deliberately generous (CI runners are noisy and the
    baseline may come from a full run while CI runs ``--quick``).
    """
    baseline = json.loads(baseline_path.read_text())
    failures = []
    for name, kernel in report["kernels"].items():
        base_kernel = baseline.get("kernels", {}).get(name)
        if base_kernel is None:
            continue
        current, recorded = _rate(kernel), _rate(base_kernel)
        if recorded <= 0:
            continue
        slowdown = recorded / max(current, 1e-9)
        marker = "FAIL" if slowdown > max_slowdown else "ok"
        print(
            f"  baseline {name:18s} {current:>12,.0f} msgs/s vs "
            f"{recorded:>12,.0f} recorded ({slowdown:.2f}x slower) {marker}"
        )
        if slowdown > max_slowdown:
            failures.append(
                f"{name}: {slowdown:.2f}x slower than baseline "
                f"(limit {max_slowdown}x)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small message counts for CI smoke runs",
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=DEFAULT_OUTPUT,
        help=f"where to write the JSON report (default {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--min-append-speedup", type=float, default=None,
        help="fail unless the linger=200 append speedup meets this floor",
    )
    parser.add_argument(
        "--min-wire-reduction", type=float, default=None,
        help="fail unless compress_pipeline's bytes-on-wire reduction "
             "(none vs zlib) meets this floor",
    )
    parser.add_argument(
        "--max-eo-overhead", type=float, default=None,
        help="fail if exactly-once simulated latency exceeds this multiple "
             "of at-least-once on the pipeline kernel (acceptance: 1.5)",
    )
    parser.add_argument(
        "--max-telemetry-overhead", type=float, default=None,
        help="fail if the telemetry-on pipeline run is this many times "
             "slower than telemetry-off (acceptance: 1.05)",
    )
    parser.add_argument(
        "--baseline", type=pathlib.Path, default=None,
        help="recorded report to compare throughput against "
             "(e.g. the committed BENCH_hotpath.json)",
    )
    parser.add_argument(
        "--max-slowdown", type=float, default=3.0,
        help="fail if any kernel is this many times slower than the "
             "baseline (default 3.0; generous on purpose)",
    )
    args = parser.parse_args(argv)
    report = run_all(args.quick)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    speedup = report["kernels"]["append_linger200"]["speedup"]
    if args.min_append_speedup is not None and speedup < args.min_append_speedup:
        print(
            f"FAIL: append speedup {speedup}x below floor "
            f"{args.min_append_speedup}x"
        )
        return 1
    reduction = report["kernels"]["compress_pipeline"]["wire_reduction"]
    if (
        args.min_wire_reduction is not None
        and reduction < args.min_wire_reduction
    ):
        print(
            f"FAIL: wire reduction {reduction}x below floor "
            f"{args.min_wire_reduction}x"
        )
        return 1
    overhead = report["kernels"]["exactly_once_job"]["eo_overhead"]
    if args.max_eo_overhead is not None and overhead > args.max_eo_overhead:
        print(
            f"FAIL: exactly-once overhead {overhead}x above ceiling "
            f"{args.max_eo_overhead}x"
        )
        return 1
    telemetry = report["kernels"]["telemetry"]["telemetry_overhead"]
    if (
        args.max_telemetry_overhead is not None
        and telemetry > args.max_telemetry_overhead
    ):
        print(
            f"FAIL: telemetry overhead {telemetry}x above ceiling "
            f"{args.max_telemetry_overhead}x"
        )
        return 1
    if args.baseline is not None:
        failures = _check_baseline(report, args.baseline, args.max_slowdown)
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
