"""E1 — §4.1: "read/write throughput remains constant independent of log size."

Sweeps the retained log size over two orders of magnitude and measures the
simulated throughput of (a) tail appends and (b) tail reads, which must stay
flat.  The contrast baseline is the DFS "topic" (a directory of part files),
where getting the latest data requires re-reading the directory — a cost
that grows linearly with history.
"""

import pytest

from repro.baselines.dfs import SimulatedDFS
from repro.common.clock import SimClock
from repro.storage.log import LogConfig, PartitionLog

from reporting import attach, format_table, publish

LOG_SIZES = [1_000, 5_000, 20_000, 50_000]
PROBE = 500  # operations measured at each size


def measure_log_at_size(size: int) -> tuple[float, float]:
    """Returns (append msgs/s, tail-read msgs/s) in simulated time."""
    clock = SimClock()
    log = PartitionLog(
        "bench-0", LogConfig(segment_max_messages=2000), clock=clock
    )
    for i in range(size):
        log.append(f"k{i % 100}", {"i": i})
    clock.advance(10.0)  # flush timers settle

    append_cost = 0.0
    for i in range(PROBE):
        append_cost += log.append(f"k{i % 100}", {"i": i}).latency
    read_cost = 0.0
    cursor = log.log_end_offset - PROBE
    while cursor < log.log_end_offset:
        result = log.read(cursor, max_messages=100)
        if not result.messages:
            break
        read_cost += result.latency
        cursor = result.messages[-1].offset + 1
    return PROBE / append_cost, PROBE / read_cost


def measure_dfs_at_size(size: int) -> float:
    """Simulated cost of a 'get latest' on a DFS-dir topic of given size."""
    clock = SimClock()
    dfs = SimulatedDFS(clock)
    part = 0
    for start in range(0, size, 1000):
        chunk = [{"i": i} for i in range(start, min(start + 1000, size))]
        dfs.write_file(f"/topic/part-{part:05d}", chunk)
        part += 1
    # The consumer has no offsets: it must list + read the directory.
    return dfs.read_dir("/topic").latency


def run_experiment() -> dict:
    rows = []
    appends, reads, dfs_costs = [], [], []
    for size in LOG_SIZES:
        append_tput, read_tput = measure_log_at_size(size)
        dfs_cost = measure_dfs_at_size(size)
        appends.append(append_tput)
        reads.append(read_tput)
        dfs_costs.append(dfs_cost)
        rows.append(
            [size, f"{append_tput:,.0f}", f"{read_tput:,.0f}", dfs_cost]
        )
    table = format_table(
        "E1  Log throughput vs. retained size (simulated)",
        ["log size (msgs)", "append msgs/s", "tail read msgs/s",
         "DFS 'read latest' (s)"],
        rows,
        notes=[
            "paper: 'read/write throughput remains constant independent of "
            "log size' (4.1)",
            "DFS baseline must re-read the directory: cost grows with history",
        ],
    )
    publish("e1_log_throughput", table)
    return {
        "append_flatness": max(appends) / min(appends),
        "read_flatness": max(reads) / min(reads),
        "dfs_growth": dfs_costs[-1] / dfs_costs[0],
    }


class TestE1Shape:
    def test_log_throughput_flat_and_dfs_grows(self):
        metrics = run_experiment()
        # Flat: < 2x spread over a 50x size sweep.
        assert metrics["append_flatness"] < 2.0
        assert metrics["read_flatness"] < 2.0
        # DFS read-latest cost grows roughly with size (50x data -> >10x cost).
        assert metrics["dfs_growth"] > 10.0


@pytest.mark.benchmark(group="e1")
def test_e1_append_kernel(benchmark):
    """Wall-clock kernel: appends to an already-large log."""
    clock = SimClock()
    log = PartitionLog("k-0", LogConfig(segment_max_messages=2000), clock=clock)
    for i in range(20_000):
        log.append(f"k{i % 100}", {"i": i})

    counter = iter(range(10**9))

    def append_one():
        log.append("key", {"i": next(counter)})

    benchmark(append_one)
    attach(benchmark, log_size=log.log_end_offset)
