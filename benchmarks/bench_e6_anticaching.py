"""E6 — §4.1: anti-caching keeps the head of the log at RAM speed.

"the OS maintains data in RAM first and flushes it to disk after a
configurable timeout ... This permits the head of the log to be maintained
in memory for back-end systems that need low-latency access. ... the initial
reads are slower due to the OS loading pages into RAM; after typically a few
seconds, successive reads become fast due to prefetching."

Three access patterns against one partition, under RAM pressure (cache holds
~20% of the log):

* **tail consumer** — reads freshly appended messages (nearline path);
* **cold rewind** — seeks a month back and reads the first batch;
* **warmed rewind** — continues the rewound scan (prefetching kicked in).

Ablation: append-order (anti-caching) eviction vs. plain LRU with a
history-scanning consumer churning the cache.
"""

import pytest

from repro.common.clock import SimClock
from repro.common.costmodel import DEFAULT_COST_MODEL
from repro.storage.log import LogConfig, PartitionLog
from repro.storage.pagecache import PageCache

from reporting import attach, format_table, publish

LOG_MESSAGES = 20_000
PAYLOAD = {"data": "x" * 200}
BATCH = 100


def build_log(eviction: str) -> tuple[SimClock, PartitionLog]:
    clock = SimClock()
    cache = PageCache(
        clock=clock,
        capacity_bytes=1 * 1024 * 1024,  # ~20% of the log's ~5 MB
        flush_timeout=2.0,
        prefetch_pages=8,
        eviction=eviction,
    )
    log = PartitionLog(
        "t-0",
        LogConfig(segment_max_bytes=256 * 1024, segment_max_messages=100_000),
        clock=clock,
        page_cache=cache,
    )
    for i in range(LOG_MESSAGES):
        log.append(f"k{i % 50}", PAYLOAD)
        if i % 1000 == 0:
            clock.advance(1.0)  # flush timers fire; old data goes cold
    clock.advance(5.0)
    return clock, log


def read_batch(log: PartitionLog, offset: int) -> tuple[float, int]:
    result = log.read(offset, max_messages=BATCH)
    return result.latency, (
        result.messages[-1].offset + 1 if result.messages else offset
    )


def run_access_patterns() -> dict:
    _clock, log = build_log("append_order")

    # Tail consumer: read the newest BATCH repeatedly as new data arrives.
    tail_costs = []
    for _ in range(20):
        offset = log.log_end_offset
        for i in range(BATCH):
            log.append("fresh", PAYLOAD)
        latency, _next = read_batch(log, offset)
        tail_costs.append(latency / BATCH)

    # Cold rewind: jump to the oldest retained data.
    rewind_offset = log.log_start_offset
    cold_latency, cursor = read_batch(log, rewind_offset)
    cold_cost = cold_latency / BATCH

    # Warmed rewind: continue the scan; prefetch + sequential reads.
    warmed_costs = []
    for _ in range(20):
        latency, cursor = read_batch(log, cursor)
        warmed_costs.append(latency / BATCH)

    tail = sum(tail_costs) / len(tail_costs)
    warmed = sum(warmed_costs) / len(warmed_costs)
    rows = [
        ["tail consumer (head of log)", tail * 1e6],
        ["cold rewind (first batch)", cold_cost * 1e6],
        ["warmed rewind (steady scan)", warmed * 1e6],
    ]
    table = format_table(
        "E6a  Per-message read cost by access pattern (simulated µs)",
        ["access pattern", "cost per message (µs)"],
        rows,
        notes=[
            "paper: head of log in memory; initial random reads slower; "
            "'after typically a few seconds, successive reads become fast "
            "due to prefetching' (4.1)",
        ],
    )
    publish("e6a_anticaching", table)
    return {"tail": tail, "cold": cold_cost, "warmed": warmed}


def run_eviction_ablation() -> dict:
    """A history-scanning consumer churns the cache while a tail consumer
    reads fresh data; anti-caching protects the tail reader."""
    results = {}
    for eviction in ("append_order", "lru"):
        clock, log = build_log(eviction)
        tail_costs = []
        scan_cursor = log.log_start_offset
        # The tail consumer lags a couple of pages behind the producers (a
        # few seconds of traffic, as any real nearline consumer does).  Its
        # pages are flushed clean by the time it reads them, so they are
        # evictable: anti-caching protects them (they are the NEWEST data),
        # LRU sacrifices them to the scanner's recently-touched history.
        tail_cursor = log.log_end_offset
        for round_no in range(25):
            for _ in range(300):
                log.append("fresh", PAYLOAD)
            clock.advance(3.0)  # flush timers clean the fresh pages
            # The scanner chews through history (cache-hostile, in volume).
            for _ in range(6):
                _latency, scan_cursor = read_batch(log, scan_cursor)
            if round_no >= 2:
                latency = 0.0
                for _ in range(3):
                    batch_latency, tail_cursor = read_batch(log, tail_cursor)
                    latency += batch_latency
                tail_costs.append(latency / (3 * BATCH))
        results[eviction] = sum(tail_costs) / len(tail_costs)
    rows = [
        ["append-order (anti-caching)", results["append_order"] * 1e6],
        ["LRU", results["lru"] * 1e6],
    ]
    table = format_table(
        "E6b  Tail-consumer cost under a concurrent history scan "
        "(simulated µs/msg)",
        ["eviction policy", "tail read cost (µs/msg)"],
        rows,
        notes=["ablation of the paper's anti-caching design choice"],
    )
    publish("e6b_eviction_ablation", table)
    return results


class TestE6Shape:
    def test_access_pattern_ordering(self):
        metrics = run_access_patterns()
        # Tail reads at RAM speed; the cold rewind pays a seek; the warmed
        # scan is far cheaper than the cold batch.
        assert metrics["cold"] > 20 * metrics["tail"]
        assert metrics["cold"] > 3 * metrics["warmed"]
        ram_per_message = DEFAULT_COST_MODEL.ram_read(64 * 1024) / 100
        assert metrics["tail"] < 50 * ram_per_message

    def test_anticaching_beats_lru_for_tail_readers(self):
        results = run_eviction_ablation()
        assert results["append_order"] <= results["lru"]


@pytest.mark.benchmark(group="e6")
def test_e6_tail_read_kernel(benchmark):
    _clock, log = build_log("append_order")

    def tail_read():
        offset = log.log_end_offset
        for _ in range(10):
            log.append("fresh", PAYLOAD)
        return log.read(offset, max_messages=10).latency

    simulated = benchmark.pedantic(tail_read, rounds=20, iterations=1)
    attach(benchmark, simulated_latency_s=simulated)
