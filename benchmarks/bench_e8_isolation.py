"""E8 — §3.2/§4.4: resource isolation protects well-behaved jobs.

"resource-intensive jobs may affect other jobs running on the same
infrastructure ... The processing layer uses OS-level resource isolation
... restricting the memory and CPU resources of each job."  §5.1 gives the
failure story: "these sub-systems were shared by different teams, making
resource isolation impossible: bugs in one sub-system affected the other."

A well-behaved "victim" job shares one worker machine with a runaway "hog"
job (a bug gave it a 50x backlog).  We measure the victim's throughput and
its record age (freshness of results) with isolation off vs. on.
"""

import pytest

from repro.common.clock import SimClock
from repro.messaging.cluster import MessagingCluster
from repro.messaging.producer import Producer
from repro.processing.containers import IsolatedHost, ResourceQuota
from repro.processing.job import JobConfig, JobRunner

from reporting import attach, format_table, publish

QUANTA = 30
DT = 0.1
CPU_COST = 1e-3
VICTIM_RATE = 40       # victim records arriving per quantum
HOG_BACKLOG = 20_000   # the runaway job's initial backlog


class NoopTask:
    def process(self, record, collector):
        pass


def build_host(isolation: bool):
    clock = SimClock()
    cluster = MessagingCluster(num_brokers=1, clock=clock)
    cluster.create_topic("hog-in", num_partitions=1, replication_factor=1)
    cluster.create_topic("victim-in", num_partitions=1, replication_factor=1)
    producer = Producer(cluster)
    for i in range(HOG_BACKLOG):
        producer.send("hog-in", {"i": i})
    hog = JobRunner(
        JobConfig(name="hog", inputs=["hog-in"], task_factory=NoopTask,
                  cpu_cost_per_message=CPU_COST),
        cluster,
    )
    victim = JobRunner(
        JobConfig(name="victim", inputs=["victim-in"], task_factory=NoopTask,
                  cpu_cost_per_message=CPU_COST),
        cluster,
    )
    host = IsolatedHost(cores=1, isolation=isolation)
    host.add_job(hog, ResourceQuota(cpu_cores=0.5))
    host.add_job(victim, ResourceQuota(cpu_cores=0.5))
    return clock, cluster, producer, host, victim


def run_scenario(isolation: bool) -> dict:
    clock, cluster, producer, host, victim = build_host(isolation)
    victim_done = 0
    for _ in range(QUANTA):
        for i in range(VICTIM_RATE):
            producer.send("victim-in", {"i": i}, timestamp=clock.now())
        report = host.run_quantum(DT)
        victim_done += report.processed["victim"]
    age_histogram = cluster.metrics.histogram("processing.job.victim.record_age")
    return {
        "isolation": isolation,
        "victim_processed": victim_done,
        "victim_offered": QUANTA * VICTIM_RATE,
        "victim_backlog": victim.backlog(),
        "victim_p95_age": age_histogram.percentile(95) if age_histogram.count else float("inf"),
    }


def run_experiment() -> dict:
    results = {}
    rows = []
    for isolation in (False, True):
        result = run_scenario(isolation)
        results[isolation] = result
        rows.append(
            [
                "on" if isolation else "off",
                result["victim_offered"],
                result["victim_processed"],
                result["victim_backlog"],
                result["victim_p95_age"],
            ]
        )
    table = format_table(
        "E8  Victim job sharing a machine with a runaway hog (simulated)",
        ["isolation", "victim records offered", "processed",
         "backlog left", "p95 result age (s)"],
        rows,
        notes=[
            "paper: without isolation 'bugs in one sub-system affected the "
            "other' (5.1); containers restrict per-job CPU/memory (4.4)",
            f"hog backlog {HOG_BACKLOG} records; both jobs quota'd at 0.5 "
            "cores of a 1-core host",
        ],
    )
    publish("e8_isolation", table)
    return results


class TestE8Shape:
    def test_isolation_keeps_victim_current(self):
        results = run_experiment()
        without = results[False]
        with_iso = results[True]
        # With isolation the victim keeps up with its offered load.
        assert with_iso["victim_processed"] >= 0.95 * with_iso["victim_offered"]
        assert with_iso["victim_backlog"] <= VICTIM_RATE
        # Without isolation the hog starves it: most of the work backs up.
        assert without["victim_backlog"] > 0.5 * without["victim_offered"]
        # Result freshness: p95 age an order of magnitude better.
        assert with_iso["victim_p95_age"] * 5 < without["victim_p95_age"]

    def test_hog_makes_progress_in_both_modes(self):
        # Isolation must not stall the hog either - it gets its own quota.
        for isolation in (False, True):
            clock, cluster, producer, host, victim = build_host(isolation)
            report = host.run_quantum(DT)
            assert report.processed["hog"] > 0


@pytest.mark.benchmark(group="e8")
def test_e8_quantum_kernel(benchmark):
    clock, cluster, producer, host, victim = build_host(True)

    def one_quantum():
        for i in range(VICTIM_RATE):
            producer.send("victim-in", {"i": i}, timestamp=clock.now())
        return host.run_quantum(DT)

    benchmark.pedantic(one_quantum, rounds=5, iterations=1)
    attach(benchmark, isolation=True)
