"""E3 — §4.2: incremental processing vs. full recompute.

"reading all data each time that it changes would be infeasible — the
required time would increase linearly with data size.  Instead, the
processing layer can read the available data, compute such statistics and
maintain them as state ... and reads only the new data."

Maintains per-user profile statistics over a profile-update feed.  The
history length is swept while the per-period delta stays fixed; the cost of
one statistics refresh is measured three ways: full recompute, Hourglass
(incremental MR on the DFS — the industry approach the paper cites as [14])
and Liquid's nearline incremental fold.
"""

import pytest

from repro.baselines.dfs import SimulatedDFS
from repro.baselines.hourglass import HourglassJob
from repro.baselines.mapreduce import MapReduceEngine
from repro.common.clock import SimClock
from repro.core.incremental import IncrementalFold
from repro.messaging.cluster import MessagingCluster
from repro.messaging.producer import Producer
from repro.workloads.profiles import ProfileUpdateGenerator

from reporting import attach, format_table, publish

HISTORIES = [1_000, 4_000, 16_000]
DELTA = 50


def build_feed(history: int) -> MessagingCluster:
    cluster = MessagingCluster(num_brokers=1, clock=SimClock())
    cluster.create_topic("profiles", num_partitions=2, replication_factor=1)
    producer = Producer(cluster)
    generator = ProfileUpdateGenerator(users=max(100, history // 10), seed=3)
    produced = 0
    for profile in generator.snapshot():
        if produced >= history:
            break
        producer.send("profiles", profile, key=profile["user"])
        produced += 1
    period = 0.0
    while produced < history:
        period += 1.0
        for update in generator.delta(period):
            if produced >= history:
                break
            producer.send("profiles", update, key=update["user"])
            produced += 1
    return cluster


def stats_fold() -> tuple:
    def init():
        return {"updates": 0, "users": set()}

    def fold(state, record):
        state["updates"] += 1
        state["users"].add(record.value["user"])
        return state

    return init, fold


def refresh_costs(history: int) -> tuple[float, float]:
    """Returns (incremental_cost, recompute_cost) of refreshing the stats
    after DELTA new updates arrive on a feed with `history` records."""
    cluster = build_feed(history)
    init, fold = stats_fold()
    incremental = IncrementalFold(cluster, "profiles", "stats", init, fold)
    incremental.update()  # initial build (both strategies start warm)

    producer = Producer(cluster)
    generator = ProfileUpdateGenerator(users=100, seed=99)
    count = 0
    for update in generator.deltas(periods=1000, start=1000.0):
        if count >= DELTA:
            break
        producer.send("profiles", update, key=update["user"])
        count += 1

    incremental_cost = incremental.update().simulated_seconds
    recompute_cost = incremental.recompute_from_scratch().simulated_seconds
    return incremental_cost, recompute_cost


def hourglass_refresh_cost(history: int) -> float:
    """Simulated cost of one Hourglass (incremental-MR) refresh of the same
    statistics after a DELTA-record update lands as a new DFS part-file."""
    clock = SimClock()
    dfs = SimulatedDFS(clock)
    engine = MapReduceEngine(dfs, clock)
    generator = ProfileUpdateGenerator(users=max(100, history // 10), seed=3)
    records = []
    for profile in generator.snapshot():
        if len(records) >= history:
            break
        records.append(profile)
    for start in range(0, len(records), 1000):
        dfs.write_file(
            f"/profiles/part-{start // 1000:05d}", records[start : start + 1000]
        )
    job = HourglassJob(
        dfs, engine, name=f"stats-{history}", input_dir="/profiles",
        map_fn=lambda r: [(r["user"], 1)],
        aggregate_fn=sum,
        merge_fn=lambda a, b: a + b,
    )
    job.run()  # warm: aggregates the full history once
    delta = [
        {"user": f"member-x{i}", "headline": "h"} for i in range(DELTA)
    ]
    dfs.write_file("/profiles/part-99999", delta)
    return job.run().total_seconds


def run_experiment() -> dict:
    rows = []
    inc_series, full_series, hourglass_series = [], [], []
    for history in HISTORIES:
        inc, full = refresh_costs(history)
        hourglass = hourglass_refresh_cost(history)
        inc_series.append(inc)
        full_series.append(full)
        hourglass_series.append(hourglass)
        rows.append([history, DELTA, full, hourglass, inc, full / inc])
    table = format_table(
        "E3  Statistics refresh cost after a fixed delta (simulated seconds)",
        ["history (msgs)", "delta (msgs)", "full recompute (s)",
         "Hourglass incr. MR (s)", "Liquid incremental (s)",
         "recompute/Liquid"],
        rows,
        notes=[
            "paper: recompute 'would increase linearly with data size'; "
            "incremental reads only the new data (4.2)",
            "Hourglass (paper ref [14]) reads only the delta too, but every "
            "refresh still pays the fixed MR job startup",
            "full recompute here re-reads the retained log nearline; a "
            "DFS-based recompute would add the E2 MR overheads on top",
        ],
    )
    publish("e3_incremental", table)
    return {
        "recompute_growth": full_series[-1] / full_series[0],
        "incremental_growth": inc_series[-1] / inc_series[0],
        "advantage_at_max": full_series[-1] / inc_series[-1],
        "hourglass_flat": max(hourglass_series) / min(hourglass_series),
        "hourglass_overhead": min(hourglass_series),
        "liquid_worst": max(inc_series),
    }


class TestE3Shape:
    def test_recompute_linear_incremental_flat(self):
        metrics = run_experiment()
        # 16x history -> recompute cost grows ~linearly (allow >6x),
        # incremental stays bounded (<3x).
        assert metrics["recompute_growth"] > 6.0
        assert metrics["incremental_growth"] < 3.0
        assert metrics["advantage_at_max"] > 20.0

    def test_hourglass_is_flat_but_startup_bound(self):
        """The paper-cited industry fix makes MR delta-proportional, yet each
        refresh still costs ~a job startup — Liquid's nearline incremental
        path is orders of magnitude cheaper per refresh."""
        metrics = run_experiment()
        assert metrics["hourglass_flat"] < 2.0           # flat in history
        assert metrics["hourglass_overhead"] > 5.0       # startup-bound
        assert metrics["hourglass_overhead"] > 100 * metrics["liquid_worst"]


@pytest.mark.benchmark(group="e3")
def test_e3_incremental_update_kernel(benchmark):
    cluster = build_feed(2_000)
    init, fold = stats_fold()
    incremental = IncrementalFold(cluster, "profiles", "stats", init, fold)
    incremental.update()
    producer = Producer(cluster)

    def one_cycle():
        for i in range(10):
            producer.send("profiles", {"user": f"member-x{i}", "headline": "h"},
                          key=f"member-x{i}")
        return incremental.update().simulated_seconds

    simulated = benchmark.pedantic(one_cycle, rounds=5, iterations=1)
    attach(benchmark, simulated_update_s=simulated)
