"""Tiered storage benchmark: hot-vs-cold read cost and archive backfill.

Measures **simulated** time (the cost-model channel, bit-reproducible
anywhere) across three claims the tiered subsystem makes:

* *hot reads unaffected* — a tiered topic serves its hot tail at exactly the
  latency an untiered topic does; archiving old segments must never tax the
  nearline path;
* *cold reads charged to the cold model* — the first touch of archived
  history pays the object-store round trip + hydration stream (and the DFS's
  own mechanics), visibly dearer than a hot read; repeat reads of the same
  history serve from the hydration cache at near-hot cost;
* *backfill completeness* — a full rewind to offset 0 of a
  retention-truncated tiered topic returns byte-identical records, at
  identical offsets, to an unbounded topic fed the same produce sequence
  (§2.2 rewindability).

Every run writes ``BENCH_tiered.json`` at the repo root with pass/fail
checks so CI can smoke it.

Usage::

    PYTHONPATH=src python benchmarks/bench_tiered.py [--quick] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.common.costmodel import DEFAULT_COST_MODEL  # noqa: E402
from repro.common.records import TopicPartition  # noqa: E402
from repro.messaging.cluster import MessagingCluster  # noqa: E402
from repro.messaging.topic import TopicConfig  # noqa: E402
from repro.storage.log import LogConfig  # noqa: E402
from repro.storage.retention import RetentionConfig  # noqa: E402
from repro.storage.tiered import TieredConfig  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_tiered.json"


def build_cluster(messages: int, per_segment: int, tiered: bool,
                  retention: bool = True) -> MessagingCluster:
    """A 1-partition topic with ``messages`` records and expired history."""
    cluster = MessagingCluster(num_brokers=3, maintenance_interval=1.0)
    cluster.create_topic(
        TopicConfig(
            name="events",
            num_partitions=1,
            replication_factor=3,
            retention=RetentionConfig(retention_seconds=5.0) if retention
            else RetentionConfig(),
            log=LogConfig(segment_max_messages=per_segment),
            tiered=TieredConfig() if tiered else None,
        )
    )
    for i in range(messages):
        cluster.produce(
            "events", 0, [(f"k{i}", {"i": i, "pad": "x" * 64}, None, {})],
            acks="all",
        )
        cluster.tick(1.0)
    cluster.run_until_replicated()
    for _ in range(10):
        cluster.tick(1.0)
    return cluster


def scan(cluster: MessagingCluster, start: int, batch: int = 100):
    """Drain the partition from ``start``; returns (records, simulated s)."""
    records, latency, cursor = [], 0.0, start
    end = cluster.log_end_offset(TopicPartition("events", 0))
    while cursor < end:
        result = cluster.fetch("events", 0, cursor, max_messages=batch)
        if not result.records:
            break
        records.extend(result.records)
        latency += result.latency
        cursor = result.next_offset
    return records, latency


def bench_hot_reads(messages: int, per_segment: int) -> dict:
    """Head-of-log reads on a tiered vs. an untiered topic must cost the same."""
    out = {}
    for arm in ("untiered", "tiered"):
        cluster = build_cluster(messages, per_segment, tiered=arm == "tiered")
        tp = TopicPartition("events", 0)
        start = cluster._leader_replica(tp).log.log_start_offset
        _records, latency = scan(cluster, start)
        out[arm] = {"hot_start": start, "simulated_s": latency}
    out["equal"] = out["tiered"]["simulated_s"] == out["untiered"]["simulated_s"]
    return out


def bench_cold_reads(messages: int, per_segment: int) -> dict:
    """First-touch backfill pays the cold model; repeats serve from cache."""
    cluster = build_cluster(messages, per_segment, tiered=True)
    tp = TopicPartition("events", 0)
    leader = cluster._leader_replica(tp)
    archived_segments = leader.cold_tier.manifest.segment_count
    hot_start = leader.log.log_start_offset

    cold_records, cold_s = scan(cluster, 0)
    cached_records, cached_s = scan(cluster, 0)
    # A same-size scan entirely inside the hot tier, for scale.
    hot_records, hot_s = scan(cluster, hot_start)

    min_cold = archived_segments * DEFAULT_COST_MODEL.cold_fetch_overhead
    stats = leader.cold_tier.stats()
    return {
        "archived_segments": archived_segments,
        "archived_bytes": stats["archived_bytes"],
        "hot_start_offset": hot_start,
        "first_backfill_s": cold_s,
        "cached_backfill_s": cached_s,
        "hot_scan_s": hot_s,
        "min_cold_fetch_s": min_cold,
        "cold_hit_ratio": stats["cold_hit_ratio"],
        "cold_cost_charged": cold_s >= min_cold,
        "cache_effective": cached_s < cold_s,
    }


def bench_backfill(messages: int, per_segment: int) -> dict:
    """Full rewind of a truncated tiered topic == the unbounded topic."""
    tiered = build_cluster(messages, per_segment, tiered=True)
    unbounded = build_cluster(messages, per_segment, tiered=False,
                              retention=False)
    got, tiered_s = scan(tiered, 0)
    want, unbounded_s = scan(unbounded, 0)
    identical = (
        [(r.offset, r.key, r.value, r.timestamp) for r in got]
        == [(r.offset, r.key, r.value, r.timestamp) for r in want]
    )
    return {
        "messages": messages,
        "records_read": len(got),
        "complete": len(got) == messages,
        "byte_identical": identical,
        "tiered_backfill_s": tiered_s,
        "unbounded_scan_s": unbounded_s,
    }


def run_all(quick: bool) -> dict:
    messages = 60 if quick else 400
    per_segment = 5 if quick else 20
    print(f"bench_tiered: {messages} msgs, {per_segment}/segment")
    hot = bench_hot_reads(messages, per_segment)
    cold = bench_cold_reads(messages, per_segment)
    backfill = bench_backfill(messages, per_segment)
    for name, section in (("hot", hot), ("cold", cold), ("backfill", backfill)):
        print(f"  {name}: " + ", ".join(
            f"{k}={v}" for k, v in section.items() if not isinstance(v, dict)
        ))
    checks = {
        "hot_reads_unaffected": hot["equal"],
        "cold_cost_charged": cold["cold_cost_charged"],
        "hydration_cache_effective": cold["cache_effective"],
        "backfill_complete": backfill["complete"] and backfill["byte_identical"],
    }
    return {
        "schema": "bench_tiered/v1",
        "quick": quick,
        "python": platform.python_version(),
        "cold_model": {
            "cold_fetch_overhead_s": DEFAULT_COST_MODEL.cold_fetch_overhead,
            "cold_read_bandwidth": DEFAULT_COST_MODEL.cold_read_bandwidth,
            "cold_write_bandwidth": DEFAULT_COST_MODEL.cold_write_bandwidth,
        },
        "hot_reads": hot,
        "cold_reads": cold,
        "backfill": backfill,
        "checks": checks,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small message counts for CI smoke runs",
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=DEFAULT_OUTPUT,
        help=f"where to write the JSON report (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)
    report = run_all(args.quick)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    failed = [name for name, ok in report["checks"].items() if not ok]
    if failed:
        print(f"FAIL: {', '.join(failed)}")
        return 1
    print("all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
