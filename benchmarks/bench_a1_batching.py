"""Ablation A1 — producer batching: amortizing the per-request overhead.

The messaging layer's request overhead (RPC dispatch + RTT) dominates
single-record produces; batching amortizes it across records, which is how
the real system achieves the paper's "high-throughput writes".  This
ablation sweeps the producer's ``linger_messages`` and reports simulated
per-record cost and throughput.
"""

import pytest

from repro.common.clock import SimClock
from repro.messaging.cluster import ACKS_LEADER, MessagingCluster
from repro.messaging.producer import Producer

from reporting import attach, format_table, publish

MESSAGES = 2_000
LINGERS = [1, 10, 50, 200]


def produce_all(linger: int) -> float:
    """Simulated seconds to produce MESSAGES records with given batching."""
    cluster = MessagingCluster(num_brokers=3, clock=SimClock())
    cluster.create_topic("t", num_partitions=1, replication_factor=3)
    producer = Producer(cluster, acks=ACKS_LEADER, linger_messages=linger)
    total = 0.0
    for i in range(MESSAGES):
        ack = producer.send("t", {"i": i})
        if ack is not None:
            total += ack.latency
    for ack in producer.flush():
        total += ack.latency
    return total


def run_experiment() -> dict:
    rows = []
    costs = {}
    for linger in LINGERS:
        total = produce_all(linger)
        costs[linger] = total
        rows.append(
            [linger, total, total / MESSAGES * 1e6, f"{MESSAGES / total:,.0f}"]
        )
    table = format_table(
        "A1  Producer batching sweep (simulated, acks=leader, rf=3)",
        ["linger (msgs/batch)", "total time (s)", "per-record cost (µs)",
         "throughput msg/s"],
        rows,
        notes=[
            "per-request overhead (RTT + dispatch) amortizes across the "
            "batch: the messaging layer's high-throughput write path",
        ],
    )
    publish("a1_batching", table)
    return costs


class TestA1Shape:
    def test_batching_amortizes_overhead(self):
        costs = run_experiment()
        assert costs[10] < costs[1] / 5
        assert costs[200] < costs[10]

    def test_all_records_delivered_regardless_of_batching(self):
        cluster = MessagingCluster(num_brokers=3, clock=SimClock())
        cluster.create_topic("t", num_partitions=1, replication_factor=3)
        producer = Producer(cluster, linger_messages=64)
        for i in range(333):
            producer.send("t", i)
        producer.flush()
        cluster.tick(0.0)
        result = cluster.fetch("t", 0, 0, max_messages=1000)
        assert [r.value for r in result.records] == list(range(333))


@pytest.mark.benchmark(group="a1")
def test_a1_batched_produce_kernel(benchmark):
    cluster = MessagingCluster(num_brokers=3, clock=SimClock())
    cluster.create_topic("t", num_partitions=1, replication_factor=3)
    producer = Producer(cluster, linger_messages=50)
    counter = iter(range(10**9))

    def send_one():
        producer.send("t", {"i": next(counter)})

    benchmark(send_one)
    attach(benchmark, linger=50)
