"""Benchmark-suite configuration."""

import sys
import pathlib

# Make `reporting` importable when pytest is invoked from the repo root.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
