"""E10 — §5: deployment-shape statistics at 1:1000 scale.

"[The messaging layer] ingests over 50 TB of input data and produces over
250 TB of output data daily (including replication) ... runs in 5
co-location centers ... 300 machines in total that host over 25,000 topics
and 200,000 partitions.  The processing layer ... spans across 8 clusters
with over 60 machines."

We build a scaled-down Liquid deployment (6 brokers, mixed workloads from
all four §5.1 use cases, replication factor 3, a tier of derived feeds,
plus a second co-location center fed by a WAN mirror) and check that the
*shape* holds: the bytes-out-to-bytes-in amplification is ~5x (3x
replication + ~2x derived/consumed data), and the cross-colo mirror keeps
lag at zero.
"""

import pytest

from repro.core.etl import GroupCountTask, MapTask, RouterTask
from repro.core.liquid import Liquid
from repro.messaging.mirror import MirrorMaker
from repro.processing.job import JobConfig, StoreConfig
from repro.workloads.callgraph import CallGraphEventGenerator
from repro.workloads.oplogs import OperationalEventGenerator
from repro.workloads.profiles import ProfileUpdateGenerator
from repro.workloads.rum import RumEventGenerator

from reporting import attach, format_table, publish

BROKERS = 6
EVENTS_PER_SOURCE = 800

#: Paper's deployment numbers (the 1:1 reference).
PAPER = {
    "ingest_tb_daily": 50,
    "output_tb_daily": 250,
    "machines_messaging": 300,
    "machines_processing": 60,
    "topics": 25_000,
    "partitions": 200_000,
}


def build_deployment() -> tuple[Liquid, dict]:
    liquid = Liquid(num_brokers=BROKERS, host_cores=16)
    source_feeds = {
        "rum-events": 4,
        "rest-spans": 4,
        "profile-updates": 2,
        "ops-events": 2,
    }
    for feed, partitions in source_feeds.items():
        liquid.create_feed(feed, partitions=partitions, replication_factor=3)

    liquid.submit_job(
        JobConfig(name="rum-by-cdn", inputs=["rum-events"],
                  task_factory=lambda: GroupCountTask(
                      "cdn-counts", lambda v: v["cdn"]),
                  stores=[StoreConfig("counts")]),
        outputs=["cdn-counts"],
    )
    liquid.submit_job(
        JobConfig(name="span-stats", inputs=["rest-spans"],
                  task_factory=lambda: GroupCountTask(
                      "service-counts", lambda v: v["service"]),
                  stores=[StoreConfig("counts")]),
        outputs=["service-counts"],
    )
    liquid.submit_job(
        JobConfig(name="profile-clean", inputs=["profile-updates"],
                  task_factory=lambda: MapTask("profiles-clean")),
        outputs=["profiles-clean"],
    )
    liquid.submit_job(
        JobConfig(name="ops-route", inputs=["ops-events"],
                  task_factory=lambda: RouterTask(
                      lambda v: {"metric": "ops-metrics", "log": "ops-logs"}.get(
                          v["type"]))),
        outputs=["ops-metrics", "ops-logs"],
    )

    producer = liquid.producer()
    ingest_bytes = 0
    from repro.common.records import estimate_size

    for event in RumEventGenerator(seed=1).events(EVENTS_PER_SOURCE):
        producer.send("rum-events", event, key=event["user"])
        ingest_bytes += estimate_size(event)
    spans = CallGraphEventGenerator(seed=2)
    count = 0
    for span in spans.events(EVENTS_PER_SOURCE):
        if count >= EVENTS_PER_SOURCE:
            break
        producer.send("rest-spans", span, key=span["request_id"])
        ingest_bytes += estimate_size(span)
        count += 1
    profiles = ProfileUpdateGenerator(users=EVENTS_PER_SOURCE, seed=3)
    for profile in profiles.snapshot():
        producer.send("profile-updates", profile, key=profile["user"])
        ingest_bytes += estimate_size(profile)
    for event in OperationalEventGenerator(seed=4).events(EVENTS_PER_SOURCE):
        producer.send("ops-events", event, key=event["host"])
        ingest_bytes += estimate_size(event)

    liquid.process_available()
    liquid.tick(1.0)

    # Second co-location center: derived feeds mirrored over the WAN for
    # geo-local consumption (§5's multi-colo layout, at 2-colo scale).
    colo2 = Liquid(num_brokers=3, clock=liquid.clock)
    mirror = MirrorMaker(
        liquid.cluster, colo2.cluster,
        topics=["cdn-counts", "service-counts", "profiles-clean"],
        name="colo1-to-colo2",
    )
    mirrored = mirror.run_until_synced()
    return liquid, {
        "ingest_bytes": ingest_bytes,
        "mirrored_records": mirrored,
        "mirror_lag": mirror.lag(),
        "colo2": colo2,
    }


def run_experiment() -> dict:
    liquid, io = build_deployment()
    stats = liquid.stats()
    stored = stats["stored_bytes"]  # all replicas, all feeds
    amplification = stored / io["ingest_bytes"]
    partitions_per_broker = stats["replicas"] / stats["brokers"]
    rows = [
        ["brokers (machines)", stats["brokers"], PAPER["machines_messaging"]],
        ["topics (feeds + internal)", stats["topics"], PAPER["topics"]],
        ["partition replicas", stats["replicas"], PAPER["partitions"] * 3],
        ["source feeds", stats["source_feeds"], "-"],
        ["derived feeds", stats["derived_feeds"], "-"],
        ["processing jobs", stats["jobs"], "-"],
        ["processing tasks", stats["processing_tasks"], "-"],
        ["bytes ingested", io["ingest_bytes"], "50 TB/day"],
        ["bytes stored incl. replication", stored, "250 TB/day out"],
        ["output/input amplification", f"{amplification:.1f}x", "~5x"],
        ["replicas per broker", f"{partitions_per_broker:.0f}",
         f"{PAPER['partitions'] * 3 // PAPER['machines_messaging']}"],
        ["co-location centers", 2, 5],
        ["records mirrored cross-colo", io["mirrored_records"], "-"],
        ["mirror lag after sync", io["mirror_lag"], "0"],
    ]
    table = format_table(
        "E10  Scaled-down deployment shape vs. the paper's 5 numbers",
        ["statistic", "this run (1:1000 scale)", "paper (LinkedIn)"],
        rows,
        notes=[
            "paper: 50 TB in / 250 TB out daily including replication = "
            "5x amplification; 25k topics / 200k partitions on 300 machines",
        ],
    )
    publish("e10_deployment", table)
    return {
        "amplification": amplification,
        "stats": stats,
        "mirrored_records": io["mirrored_records"],
        "mirror_lag": io["mirror_lag"],
    }


class TestE10Shape:
    def test_amplification_matches_paper_ratio(self):
        metrics = run_experiment()
        # Paper: 250/50 = 5x out/in (incl. replication). With rf=3 plus one
        # derived tier we expect amplification in the 3.5-8x band.
        assert 3.5 < metrics["amplification"] < 8.0

    def test_every_use_case_produced_derived_data(self):
        metrics = run_experiment()
        assert metrics["stats"]["derived_feeds"] >= 5
        assert metrics["stats"]["jobs"] == 4
        assert metrics["stats"]["source_feeds"] == 4

    def test_all_partitions_have_leaders(self):
        liquid, _io = build_deployment()
        assert liquid.cluster.controller.offline_partitions() == []

    def test_cross_colo_mirror_caught_up(self):
        metrics = run_experiment()
        assert metrics["mirrored_records"] > 0
        assert metrics["mirror_lag"] == 0


@pytest.mark.benchmark(group="e10")
def test_e10_deployment_kernel(benchmark):
    def build():
        _liquid, io = build_deployment()
        return io["ingest_bytes"]

    benchmark.pedantic(build, rounds=1, iterations=1)
    attach(benchmark, scale="1:1000")
