"""Elasticity benchmark: lag-driven scale-out drain rate vs. fixed parallelism.

Measures **simulated** time (the cost-model channel, bit-reproducible
anywhere) across the claims the elasticity subsystem makes:

* *elastic drains faster* — under a standing backlog, a lag-driven
  :class:`ElasticJobController` (1..4 containers) drains the spike at least
  2x faster in simulated time than the same job pinned at its
  min-parallelism (1 container);
* *scale-back happens* — once the backlog empties, the controller shrinks
  below its max again instead of holding peak capacity;
* *output transparency* — the elastically-scaled run emits byte-identical
  records, at identical offsets, to a run at fixed max parallelism
  (elasticity changes *when* records are processed, never *what*).

Every run writes ``BENCH_elastic.json`` at the repo root with pass/fail
checks so CI can smoke it.

Usage::

    PYTHONPATH=src python benchmarks/bench_elasticity.py [--quick] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.common.clock import SimClock  # noqa: E402
from repro.elasticity import (  # noqa: E402
    SCALE_IN,
    SCALE_OUT,
    ElasticJobController,
    ScalingPolicy,
)
from repro.messaging.cluster import MessagingCluster  # noqa: E402
from repro.messaging.producer import Producer  # noqa: E402
from repro.processing.job import JobConfig, JobRunner  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_elastic.json"
PARTITIONS = 4
CPU_COST = 0.005   # 50 messages per 0.25 s quantum per container
QUANTUM = 0.25


class PassThrough:
    """Emit-preserving task: output records carry the input's bytes."""

    def process(self, record, collector):
        collector.send("out", record.value, key=record.key,
                       partition=record.partition, timestamp=record.timestamp)


def build_cluster(messages: int) -> MessagingCluster:
    cluster = MessagingCluster(num_brokers=3, clock=SimClock())
    for topic in ("events", "out"):
        cluster.create_topic(topic, num_partitions=PARTITIONS,
                             replication_factor=3)
    producer = Producer(cluster)
    for i in range(messages):
        producer.send("events", f"v{i}", key=f"k{i}",
                      partition=i % PARTITIONS)
    producer.flush()
    cluster.run_until_replicated()
    return cluster


def make_controller(cluster: MessagingCluster, lo: int, hi: int):
    runner = JobRunner(
        JobConfig(name="drain", inputs=["events"], task_factory=PassThrough,
                  cpu_cost_per_message=CPU_COST),
        cluster,
    )
    policy = ScalingPolicy(min_containers=lo, max_containers=hi,
                           scale_out_lag=100.0, scale_in_lag=10.0,
                           cooldown=1.0)
    return ElasticJobController(runner, policy, quantum=QUANTUM)


def dump_output(cluster: MessagingCluster) -> list:
    cluster.run_until_replicated()
    out = []
    for partition in range(PARTITIONS):
        result = cluster.fetch("out", partition, 0, 1_000_000)
        out.append([
            (r.offset, r.key, r.value, r.timestamp) for r in result.records
        ])
    return out


def run_arm(messages: int, lo: int, hi: int) -> dict:
    """Drain a spike of ``messages`` with containers bounded to [lo, hi]."""
    cluster = build_cluster(messages)
    controller = make_controller(cluster, lo, hi)
    start = cluster.clock.now()
    controller.run_until_drained()
    drain_s = cluster.clock.now() - start
    actions = [event.action for event in controller.events]
    return {
        "containers": f"{lo}..{hi}",
        "drain_simulated_s": drain_s,
        "records": messages,
        "records_per_simulated_s": messages / drain_s if drain_s else 0.0,
        "scale_outs": actions.count(SCALE_OUT),
        "scale_ins": actions.count(SCALE_IN),
        "final_containers": controller.containers,
        "timeline": controller.timeline(),
        "_output": dump_output(cluster),
    }


def run_all(quick: bool) -> dict:
    messages = 2800 if quick else 4000
    print(f"bench_elasticity: {messages} msgs, {PARTITIONS} partitions, "
          f"{QUANTUM / CPU_COST:.0f} msgs/quantum/container")
    elastic = run_arm(messages, lo=1, hi=PARTITIONS)
    fixed_min = run_arm(messages, lo=1, hi=1)
    fixed_max = run_arm(messages, lo=PARTITIONS, hi=PARTITIONS)
    transparent = elastic.pop("_output") == fixed_max.pop("_output")
    fixed_min.pop("_output")
    speedup = (
        fixed_min["drain_simulated_s"] / elastic["drain_simulated_s"]
        if elastic["drain_simulated_s"] else 0.0
    )
    for name, arm in (("elastic", elastic), ("fixed_min", fixed_min),
                      ("fixed_max", fixed_max)):
        print(f"  {name}: drain={arm['drain_simulated_s']:.2f}s "
              f"rate={arm['records_per_simulated_s']:.0f} rec/s "
              f"outs={arm['scale_outs']} ins={arm['scale_ins']} "
              f"final={arm['final_containers']}")
    print(f"  speedup elastic vs fixed-min: {speedup:.2f}x")
    checks = {
        "elastic_drains_2x_faster": speedup >= 2.0,
        "scaled_out_under_load": elastic["scale_outs"] >= 1,
        "scaled_back_after_drain": (
            elastic["scale_ins"] >= 1
            and elastic["final_containers"] < PARTITIONS
        ),
        "output_byte_identical_to_fixed_max": transparent,
    }
    return {
        "schema": "bench_elastic/v1",
        "quick": quick,
        "python": platform.python_version(),
        "config": {
            "partitions": PARTITIONS,
            "cpu_cost_per_message_s": CPU_COST,
            "quantum_s": QUANTUM,
            "messages": messages,
        },
        "elastic": elastic,
        "fixed_min": fixed_min,
        "fixed_max": fixed_max,
        "speedup_vs_fixed_min": speedup,
        "checks": checks,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small message counts for CI smoke runs",
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=DEFAULT_OUTPUT,
        help=f"where to write the JSON report (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)
    report = run_all(args.quick)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    failed = [name for name, ok in report["checks"].items() if not ok]
    if failed:
        print(f"FAIL: {', '.join(failed)}")
        return 1
    print("all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
