"""E2 — §1(1)/§2.1: end-to-end latency vs. pipeline depth.

"Intermediate results of MR jobs are written to the DFS, resulting in higher
latencies as job pipelines grow in length" — while Liquid jobs hop through
the log with no per-stage job startup or DFS materialization.

The same N-stage identity pipeline (data cleaning stages) is run on both
stacks for N = 1..6 and the end-to-end simulated latency of one input batch
is reported.
"""

import pytest

from repro.baselines.dfs import SimulatedDFS
from repro.baselines.mapreduce import MapReduceEngine, MRJobSpec
from repro.common.clock import SimClock
from repro.core.etl import MapTask
from repro.core.liquid import Liquid
from repro.processing.job import JobConfig

from reporting import attach, format_table, publish

DEPTHS = [1, 2, 3, 4, 5, 6]
BATCH = 500


def mr_pipeline_latency(depth: int) -> float:
    clock = SimClock()
    dfs = SimulatedDFS(clock)
    engine = MapReduceEngine(dfs, clock)
    dfs.write_file("/stage0/part-0", [{"i": i} for i in range(BATCH)])
    specs = []
    for stage in range(depth):
        specs.append(
            MRJobSpec(
                name=f"stage{stage}",
                input_paths=[f"/stage{stage}"],
                output_path=f"/stage{stage + 1}",
                map_fn=lambda r: [(0, r)],
                reduce_fn=lambda key, values: values,
            )
        )
    results = engine.run_pipeline(specs, advance_clock=False)
    return sum(r.total_seconds for r in results)


def liquid_pipeline_latency(depth: int) -> float:
    liquid = Liquid(num_brokers=3)
    liquid.create_feed("stage0", partitions=1)
    for stage in range(depth):
        liquid.submit_job(
            JobConfig(
                name=f"stage{stage}",
                inputs=[f"stage{stage}"],
                task_factory=lambda s=stage: MapTask(f"stage{s + 1}"),
            ),
            outputs=[f"stage{stage + 1}"],
        )
    producer = liquid.producer()
    start = liquid.clock.now()
    for i in range(BATCH):
        producer.send("stage0", {"i": i})
    liquid.process_available()
    return liquid.clock.now() - start


def run_experiment() -> dict:
    rows = []
    mr_series, liquid_series = [], []
    for depth in DEPTHS:
        mr = mr_pipeline_latency(depth)
        liq = liquid_pipeline_latency(depth)
        mr_series.append(mr)
        liquid_series.append(liq)
        rows.append([depth, mr, liq, mr / liq])
    table = format_table(
        "E2  End-to-end pipeline latency vs. depth (simulated seconds)",
        ["stages", "MR/DFS (s)", "Liquid (s)", "speedup"],
        rows,
        notes=[
            "paper: MR latency grows with pipeline length (per-stage job "
            "startup + DFS materialization); Liquid stays nearline",
            f"batch of {BATCH} records per run",
        ],
    )
    publish("e2_pipeline_latency", table)
    mr_slope = (mr_series[-1] - mr_series[0]) / (DEPTHS[-1] - DEPTHS[0])
    liquid_slope = (liquid_series[-1] - liquid_series[0]) / (
        DEPTHS[-1] - DEPTHS[0]
    )
    return {
        "mr_slope": mr_slope,
        "liquid_slope": liquid_slope,
        "speedup_at_max_depth": mr_series[-1] / liquid_series[-1],
        "liquid_worst": max(liquid_series),
    }


class TestE2Shape:
    def test_mr_grows_per_stage_liquid_stays_nearline(self):
        metrics = run_experiment()
        # Each MR stage adds ~startup seconds; Liquid stages add milliseconds.
        assert metrics["mr_slope"] > 5.0          # >= job-startup scale
        assert metrics["liquid_slope"] < 0.5      # sub-second per stage
        assert metrics["speedup_at_max_depth"] > 50
        # Liquid's 6-stage pipeline still delivers within nearline bounds
        # (the paper's "order of seconds").
        assert metrics["liquid_worst"] < 10.0


@pytest.mark.benchmark(group="e2")
def test_e2_liquid_three_stage_kernel(benchmark):
    """Wall-clock kernel: one 3-stage Liquid pipeline run."""
    result = benchmark.pedantic(
        liquid_pipeline_latency, args=(3,), rounds=3, iterations=1
    )
    attach(benchmark, simulated_latency_s=result)
