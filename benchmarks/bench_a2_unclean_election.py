"""Ablation A2 — unclean leader election: availability vs. durability.

§4.3's ISR design keeps a partition offline when no in-sync replica
survives, trading availability for zero committed-data loss.  The unclean
alternative promotes an out-of-sync replica: writes resume immediately but
committed records that only the dead leader held are silently lost.  This
ablation runs the same failure sequence under both policies.

Sequence: rf=2; the follower is shrunk out of the ISR (it lagged), the
leader keeps accepting writes, then the leader dies.
"""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import BrokerUnavailableError
from repro.common.records import TopicPartition
from repro.messaging.cluster import ACKS_LEADER, MessagingCluster
from repro.messaging.producer import Producer

from reporting import attach, format_table, publish

TP = TopicPartition("t", 0)


def run_scenario(allow_unclean: bool) -> dict:
    cluster = MessagingCluster(
        num_brokers=2,
        clock=SimClock(),
        allow_unclean_election=allow_unclean,
        replication_max_lag=2,
    )
    cluster.create_topic("t", num_partitions=1, replication_factor=2)
    producer = Producer(cluster, acks=ACKS_LEADER, max_retries=0)
    leader = cluster.leader_of("t", 0)
    follower = 1 - leader

    # Phase 1: replicated writes.
    for i in range(20):
        producer.send("t", {"i": i})
    cluster.tick(0.1)

    # Phase 2: the follower falls behind and is shrunk out of the ISR
    # (simulated by stopping replication), while the leader keeps accepting.
    cluster.controller.shrink_isr(TP, follower)
    for i in range(20, 40):
        producer.send("t", {"i": i})
    # These writes were acked by the leader and committed (ISR = {leader}).
    committed = list(range(40))

    # Phase 3: the leader dies.
    cluster.kill_broker(leader)

    available = cluster.leader_of("t", 0) is not None
    write_ok = True
    try:
        producer.send("t", {"i": 999})
    except Exception:
        write_ok = False

    lost = []
    if available:
        result = cluster.fetch("t", 0, 0, max_messages=1000)
        delivered = [r.value["i"] for r in result.records]
        lost = [i for i in committed if i not in set(delivered)]
    else:
        # Recovery path: only the old leader can restore the data.
        cluster.restart_broker(leader)
        cluster.run_until_replicated()
        result = cluster.fetch("t", 0, 0, max_messages=1000)
        delivered = [r.value["i"] for r in result.records]
        lost = [i for i in committed if i not in set(delivered)]
    return {
        "policy": "unclean" if allow_unclean else "clean (paper)",
        "available_after_crash": available,
        "writes_resume_immediately": write_ok,
        "committed_lost": len(lost),
    }


def run_experiment() -> dict:
    results = {}
    rows = []
    for allow_unclean in (False, True):
        result = run_scenario(allow_unclean)
        results[allow_unclean] = result
        rows.append(
            [
                result["policy"],
                "yes" if result["available_after_crash"] else "no",
                "yes" if result["writes_resume_immediately"] else "no",
                result["committed_lost"],
            ]
        )
    table = format_table(
        "A2  Leader dies with only out-of-sync replicas left",
        ["election policy", "partition online", "writes resume",
         "committed records lost"],
        rows,
        notes=[
            "paper 4.3: electing only from the ISR tolerates N-1 failures "
            "without losing committed data; unclean election trades that "
            "durability for availability",
        ],
    )
    publish("a2_unclean_election", table)
    return results


class TestA2Shape:
    def test_clean_election_prefers_durability(self):
        results = run_experiment()
        clean = results[False]
        assert not clean["available_after_crash"]  # offline, not lying
        assert not clean["writes_resume_immediately"]
        assert clean["committed_lost"] == 0        # old leader restores all

    def test_unclean_election_prefers_availability(self):
        results = run_experiment()
        unclean = results[True]
        assert unclean["available_after_crash"]
        assert unclean["writes_resume_immediately"]
        assert unclean["committed_lost"] == 20     # the un-replicated tail

    def test_offline_partition_rejects_producers_loudly(self):
        cluster = MessagingCluster(
            num_brokers=2, clock=SimClock(), allow_unclean_election=False
        )
        cluster.create_topic("t", num_partitions=1, replication_factor=2)
        leader = cluster.leader_of("t", 0)
        cluster.controller.shrink_isr(TP, 1 - leader)
        cluster.kill_broker(leader)
        with pytest.raises(BrokerUnavailableError):
            cluster.produce("t", 0, [(None, "x", None, {})])


@pytest.mark.benchmark(group="a2")
def test_a2_failover_kernel(benchmark):
    result = benchmark.pedantic(
        lambda: run_scenario(False)["committed_lost"], rounds=3, iterations=1
    )
    attach(benchmark, committed_lost=result)
