"""E4 — §4.1: log compaction shrinks changelogs and speeds up recovery.

"performing log compaction not only reduces the changelog size, but it also
allows for faster recovery."

A stateful job maintains a keyed table under a Zipf update stream; the
update-per-key ratio is swept.  For each ratio we report the changelog size
before/after compaction and the simulated time to rebuild the task state
from it.
"""

import pytest

from repro.common.clock import SimClock
from repro.messaging.cluster import MessagingCluster
from repro.messaging.producer import Producer
from repro.processing.job import JobConfig, JobRunner, StoreConfig
from repro.processing.state import changelog_topic_name
from repro.workloads.generators import KeyPool

from reporting import attach, format_table, publish

KEYS = 200
UPDATE_RATIOS = [2, 10, 50]  # updates per key


class TableTask:
    def init(self, context):
        self.table = context.store("table")

    def process(self, record, collector):
        self.table.put(record.key, record.value)


def build_job(updates: int) -> tuple[MessagingCluster, JobRunner]:
    cluster = MessagingCluster(num_brokers=1, clock=SimClock())
    cluster.create_topic("updates", num_partitions=1, replication_factor=1)
    producer = Producer(cluster)
    pool = KeyPool(KEYS, skew=0.9, seed=17)
    for i in range(updates):
        producer.send("updates", {"rev": i}, key=pool.pick())
    runner = JobRunner(
        JobConfig(
            name="table",
            inputs=["updates"],
            task_factory=TableTask,
            stores=[StoreConfig("table")],
            changelog_segment_messages=100,
        ),
        cluster,
    )
    runner.run_until_idle()
    runner.checkpoint()
    return cluster, runner


def changelog_stats(cluster) -> tuple[int, int]:
    topic = changelog_topic_name("table", "table")
    replica = cluster.broker(cluster.leader_of(topic, 0)).replica(topic_partition(topic))
    return replica.log.message_count, replica.log.size_bytes


def topic_partition(topic):
    from repro.common.records import TopicPartition

    return TopicPartition(topic, 0)


def run_one_ratio(ratio: int) -> dict:
    updates = KEYS * ratio
    cluster, runner = build_job(updates)
    before_msgs, before_bytes = changelog_stats(cluster)
    runner.crash()
    uncompacted = runner.recover()
    runner.checkpoint()

    cluster.broker(0).run_compaction()
    after_msgs, after_bytes = changelog_stats(cluster)
    runner.crash()
    compacted = runner.recover()

    live_keys = sum(len(t.stores["table"]) for t in runner.tasks())
    return {
        "ratio": ratio,
        "updates": updates,
        "live_keys": live_keys,
        "before_msgs": before_msgs,
        "after_msgs": after_msgs,
        "before_bytes": before_bytes,
        "after_bytes": after_bytes,
        "recovery_before_s": uncompacted.simulated_seconds,
        "recovery_after_s": compacted.simulated_seconds,
        "replayed_before": uncompacted.records_replayed,
        "replayed_after": compacted.records_replayed,
    }


def run_experiment() -> list[dict]:
    results = [run_one_ratio(ratio) for ratio in UPDATE_RATIOS]
    rows = [
        [
            r["ratio"],
            r["updates"],
            r["before_msgs"],
            r["after_msgs"],
            f"{r['before_bytes'] / max(1, r['after_bytes']):.1f}x",
            r["recovery_before_s"],
            r["recovery_after_s"],
        ]
        for r in results
    ]
    table = format_table(
        "E4  Changelog compaction: size and recovery time (simulated)",
        ["updates/key", "total updates", "changelog msgs",
         "after compaction", "size reduction", "recovery before (s)",
         "recovery after (s)"],
        rows,
        notes=[
            "paper: compaction 'reduces the changelog size ... allows for "
            "faster recovery' (4.1)",
            f"{KEYS} live keys, Zipf(0.9) update skew",
        ],
    )
    publish("e4_compaction", table)
    return results


class TestE4Shape:
    def test_compaction_bounds_changelog_by_live_keys(self):
        results = run_experiment()
        heaviest = results[-1]  # 50 updates/key
        # Compacted changelog is close to the live-key count, not the
        # update count (active segment may retain a few duplicates).
        assert heaviest["after_msgs"] < 2.5 * heaviest["live_keys"]
        assert heaviest["after_msgs"] < heaviest["before_msgs"] / 10
        # Recovery replays proportionally fewer records and is faster.
        assert heaviest["replayed_after"] < heaviest["replayed_before"] / 10
        assert heaviest["recovery_after_s"] < heaviest["recovery_before_s"]

    def test_reduction_grows_with_update_ratio(self):
        results = run_experiment()
        reductions = [
            r["before_msgs"] / max(1, r["after_msgs"]) for r in results
        ]
        assert reductions == sorted(reductions)

    def test_recovered_state_is_identical_regardless(self):
        cluster, runner = build_job(KEYS * 20)
        snapshot = {
            k: v for t in runner.tasks() for k, v in t.stores["table"].items()
        }
        cluster.broker(0).run_compaction()
        runner.crash()
        runner.recover()
        restored = {
            k: v for t in runner.tasks() for k, v in t.stores["table"].items()
        }
        assert restored == snapshot


@pytest.mark.benchmark(group="e4")
def test_e4_recovery_kernel(benchmark):
    cluster, runner = build_job(KEYS * 10)
    cluster.broker(0).run_compaction()

    def recover():
        runner.crash()
        return runner.recover().simulated_seconds

    simulated = benchmark.pedantic(recover, rounds=3, iterations=1)
    attach(benchmark, simulated_recovery_s=simulated)
