"""Shared result reporting for the experiment benchmarks.

Every experiment prints the rows/series the paper's claim corresponds to and
appends them to ``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md can
quote them.  Simulated metrics also go into pytest-benchmark's ``extra_info``
where available, keeping wall-clock and simulated numbers side by side.
"""

from __future__ import annotations

import pathlib
from typing import Any, Sequence

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    notes: Sequence[str] = (),
) -> str:
    """Render an aligned text table with a title and optional notes."""
    rendered_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered_rows)) if rendered_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    for note in notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.001:
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    return str(cell)


def publish(experiment: str, table: str) -> None:
    """Print the table and persist it under benchmarks/results/."""
    print("\n" + table + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment}.txt"
    path.write_text(table + "\n")


def attach(benchmark, **metrics: Any) -> None:
    """Attach simulated metrics to the pytest-benchmark record, if present."""
    if benchmark is not None:
        for key, value in metrics.items():
            benchmark.extra_info[key] = value
