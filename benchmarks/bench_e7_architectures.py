"""E7 — §2.2: Lambda vs. Kappa vs. Liquid on the same workload.

The paper's criticisms, made measurable:

* Lambda: "developers must write, debug, and maintain the same processing
  code for both the batch and stream layers, and the Lambda architecture
  increases the hardware footprint";
* Kappa: "only requires a single processing path, but it has a higher
  storage footprint, and applications access stale data while the system is
  re-processing";
* Liquid: single code path AND reprocessing runs as just another isolated
  job, so the nearline path keeps serving fresh results throughout.

Workload: keyed event counting over the same stream, with one mid-run
algorithm change (v1 -> v2) that forces each architecture to re-process.
"""

import pytest

from repro.baselines.kappa_arch import KappaArchitecture
from repro.baselines.lambda_arch import LambdaArchitecture
from repro.common.clock import SimClock
from repro.core.liquid import Liquid
from repro.processing.job import JobConfig, StoreConfig

from reporting import attach, format_table, publish

EVENTS = 2_000
WORDS = 20


def events(n, start=0):
    return [{"w": f"w{i % WORDS}", "i": start + i} for i in range(n)]


def run_lambda() -> dict:
    lam = LambdaArchitecture(ingest_batch_size=500)
    lam.register_stream_logic(
        lambda view, e: view.__setitem__(e["w"], view.get(e["w"], 0) + 1)
    )
    lam.register_batch_logic(lambda e: [(e["w"], 1)], lambda k, vs: sum(vs))
    lam.ingest(events(EVENTS))
    lam.run_speed_layer()
    lam.run_batch_layer()
    # Algorithm change: BOTH implementations must be rewritten and the
    # batch layer recomputed.
    change_start = lam.clock.now()
    lam.register_stream_logic(
        lambda view, e: view.__setitem__(e["w"], view.get(e["w"], 0) + 2)
    )
    lam.register_batch_logic(lambda e: [(e["w"], 2)], lambda k, vs: sum(vs))
    lam.run_batch_layer()
    staleness_window = lam.clock.now() - change_start
    metrics = lam.metrics()
    return {
        "arch": "Lambda",
        "code_paths": metrics.code_paths,
        "storage_bytes": metrics.storage_bytes,
        "compute_s": metrics.batch_compute_seconds + metrics.speed_compute_seconds,
        "staleness_s": staleness_window,
        "v2_answer": lam.query("w0"),
    }


def run_kappa() -> dict:
    kappa = KappaArchitecture()
    kappa.register_logic(
        lambda view, e: view.__setitem__(e["w"], view.get(e["w"], 0) + 1), "v1"
    )
    kappa.ingest(events(EVENTS))
    kappa.process()
    staleness_window = kappa.reprocess(
        lambda view, e: view.__setitem__(e["w"], view.get(e["w"], 0) + 2), "v2"
    )
    metrics = kappa.metrics()
    return {
        "arch": "Kappa",
        "code_paths": metrics.code_paths,
        "storage_bytes": metrics.storage_bytes,
        "compute_s": metrics.compute_seconds + metrics.reprocess_seconds,
        "staleness_s": staleness_window,
        "v2_answer": kappa.query("w0"),
    }


class _CountTask:
    def __init__(self, output: str, weight: int) -> None:
        self.output = output
        self.weight = weight

    def init(self, context):
        self.counts = context.store("counts")

    def process(self, record, collector):
        word = record.value["w"]
        count = self.counts.get_or_default(word, 0) + self.weight
        self.counts.put(word, count)
        collector.send(self.output, {"w": word, "count": count}, key=word)


def run_liquid() -> dict:
    liquid = Liquid(num_brokers=1)
    liquid.create_feed("events", partitions=1)
    v1 = liquid.submit_job(
        JobConfig(name="count-v1", inputs=["events"], version="v1",
                  task_factory=lambda: _CountTask("counts-v1", 1),
                  stores=[StoreConfig("counts")]),
        outputs=["counts-v1"],
    )
    producer = liquid.producer()
    for event in events(EVENTS):
        producer.send("events", event, key=event["w"])
    liquid.process_available()

    # Algorithm change: ONE new implementation, submitted as a new job that
    # replays the retained log while v1 keeps serving.
    change_start = liquid.clock.now()
    v2 = liquid.submit_job(
        JobConfig(name="count-v2", inputs=["events"], version="v2",
                  task_factory=lambda: _CountTask("counts-v2", 2),
                  stores=[StoreConfig("counts")]),
        outputs=["counts-v2"],
    )
    liquid.process_available()
    staleness_window = liquid.clock.now() - change_start
    v2_state = {
        k: v for t in v2.tasks() for k, v in t.stores["counts"].items()
    }
    # Input storage only: the baselines keep their serving views in plain
    # dicts outside their accounted storage, so the comparable footprint is
    # the retained input data (Lambda keeps it twice, Kappa/Liquid once).
    input_bytes = sum(
        broker.replica(tp).log.size_bytes
        for tp in liquid.cluster.partitions_of("events")
        for broker in liquid.cluster.brokers()
        if broker.hosts(tp)
    )
    compute = (
        (v1.records_processed + v2.records_processed)
        * liquid.cluster.cost_model.cpu_per_message
    )
    return {
        "arch": "Liquid",
        "code_paths": 1,
        "storage_bytes": input_bytes,
        "compute_s": compute,
        "staleness_s": staleness_window,
        "v2_answer": v2_state["w0"],
        "v1_still_serving": v1.backlog() == 0,
    }


def run_experiment() -> dict:
    results = {r["arch"]: r for r in (run_lambda(), run_kappa(), run_liquid())}
    rows = [
        [
            r["arch"],
            r["code_paths"],
            f"{r['storage_bytes'] / 1024:.0f} KB",
            r["compute_s"],
            r["staleness_s"],
        ]
        for r in results.values()
    ]
    table = format_table(
        "E7  Architecture comparison on one algorithm change (simulated)",
        ["architecture", "code paths", "input storage",
         "total compute (s)", "v2-staleness window (s)"],
        rows,
        notes=[
            "paper 2.2: Lambda doubles code + hardware; Kappa single-path "
            "but stale during reprocess; Liquid reprocesses as an isolated "
            "parallel job on one code path",
            f"workload: {EVENTS} keyed events, counting, algorithm v1->v2",
            "input storage = retained copies of the event stream (serving "
            "views excluded for all three)",
        ],
    )
    publish("e7_architectures", table)
    return results


class TestE7Shape:
    def test_all_architectures_agree_on_the_answer(self):
        results = run_experiment()
        expected = 2 * (EVENTS // WORDS)
        assert results["Lambda"]["v2_answer"] == expected
        assert results["Kappa"]["v2_answer"] == expected
        assert results["Liquid"]["v2_answer"] == expected

    def test_lambda_pays_double_code_and_storage(self):
        results = run_experiment()
        assert results["Lambda"]["code_paths"] == 2
        assert results["Kappa"]["code_paths"] == 1
        assert results["Liquid"]["code_paths"] == 1
        # Lambda stores the data twice (DFS master + stream log).
        assert (
            results["Lambda"]["storage_bytes"]
            > 1.5 * results["Kappa"]["storage_bytes"]
        )

    def test_lambda_batch_compute_dominates(self):
        results = run_experiment()
        assert results["Lambda"]["compute_s"] > 10 * results["Kappa"]["compute_s"]
        assert results["Lambda"]["compute_s"] > 10 * results["Liquid"]["compute_s"]

    def test_lambda_staleness_driven_by_batch_job(self):
        results = run_experiment()
        # Lambda's new algorithm waits for a full MR recompute (tens of s);
        # Kappa and Liquid replay the log in sub-second simulated time at
        # this scale.
        assert results["Lambda"]["staleness_s"] > 10.0
        assert results["Kappa"]["staleness_s"] < 2.0
        assert results["Liquid"]["staleness_s"] < 2.0

    def test_liquid_nearline_path_unaffected_by_reprocess(self):
        results = run_experiment()
        assert results["Liquid"]["v1_still_serving"]


@pytest.mark.benchmark(group="e7")
def test_e7_liquid_kernel(benchmark):
    simulated = benchmark.pedantic(
        lambda: run_liquid()["staleness_s"], rounds=2, iterations=1
    )
    attach(benchmark, v2_staleness_s=simulated)
