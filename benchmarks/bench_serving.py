"""Serving benchmark: query latency and standby-promote vs cold-restore.

Measures **simulated** time (the cost-model channel, bit-reproducible
anywhere) across the claims the serving subsystem makes:

* *queries are cheap* — point lookups routed through the
  :class:`StateQueryRouter` cost store-probe + one network hop; the report
  records p50/p99 for gets (primary and stale-tolerant) and range scans;
* *standby promotion beats cold restore* — with an identical workload and
  crash point, a job keeping one standby replica recovers by replaying only
  the catch-up tail, at least ``--min-recovery-speedup`` times faster in
  simulated seconds than the same job cold-replaying its changelog
  (target: >= 5x; CI gates at 3x).

Every run writes ``BENCH_serving.json`` at the repo root with pass/fail
checks so CI can smoke it.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py \
        [--quick] [--min-recovery-speedup X] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import random
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.common.clock import SimClock  # noqa: E402
from repro.messaging.cluster import MessagingCluster  # noqa: E402
from repro.messaging.producer import Producer  # noqa: E402
from repro.processing.job import JobConfig, JobRunner, StoreConfig  # noqa: E402
from repro.serving import StateQueryRouter  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_serving.json"
PARTITIONS = 4
SEED = 20150107  # CIDR'15


class CountingTask:
    def init(self, context):
        self.store = context.store("counts")

    def process(self, record, collector):
        self.store.put(record.key, (self.store.get(record.key) or 0) + 1)


def build_job(standbys: int, updates: int, keys: int, tail: int):
    """Same-seed workload: phases with checkpoints, then an uncheckpointed
    tail — the exact position both recovery arms crash at."""
    rng = random.Random(SEED)
    cluster = MessagingCluster(num_brokers=3, clock=SimClock())
    cluster.create_topic("events", num_partitions=PARTITIONS,
                         replication_factor=3)
    producer = Producer(cluster)
    runner = JobRunner(
        JobConfig(name="bench-serving", inputs=["events"],
                  task_factory=CountingTask, stores=[StoreConfig("counts")],
                  changelog_replication=3, num_standby_replicas=standbys),
        cluster,
    )
    for phase in range(4):
        for _ in range(updates // 4):
            producer.send("events", 1, key=f"k{rng.randrange(keys)}")
        runner.run_until_idle()
        runner.checkpoint()
    for _ in range(tail):
        producer.send("events", 1, key=f"k{rng.randrange(keys)}")
    runner.run_until_idle()  # processed + changelogged, NOT checkpointed
    return cluster, runner


def percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def bench_queries(runner, keys: int, queries: int) -> dict:
    router = StateQueryRouter(runner)
    rng = random.Random(SEED + 1)
    gets, stale_gets = [], []
    for _ in range(queries):
        key = f"k{rng.randrange(keys)}"
        gets.append(router.get("counts", key).latency)
        stale_gets.append(router.get("counts", key, allow_stale=True).latency)
    ranges = [router.range("counts").latency for _ in range(20)]
    counts = [router.approximate_count("counts").latency for _ in range(20)]
    return {
        "queries": queries,
        "get_p50_s": percentile(gets, 0.50),
        "get_p99_s": percentile(gets, 0.99),
        "stale_get_p50_s": percentile(stale_gets, 0.50),
        "stale_get_p99_s": percentile(stale_gets, 0.99),
        "range_p50_s": percentile(ranges, 0.50),
        "range_p99_s": percentile(ranges, 0.99),
        "count_p50_s": percentile(counts, 0.50),
        "count_p99_s": percentile(counts, 0.99),
    }


def bench_recovery(standbys: int, updates: int, keys: int, tail: int) -> dict:
    _cluster, runner = build_job(standbys, updates, keys, tail)
    state_before = [
        dict(instance.stores["counts"].items()) for instance in runner.tasks()
    ]
    runner.crash()
    report = runner.recover()
    state_after = [
        dict(instance.stores["counts"].items()) for instance in runner.tasks()
    ]
    return {
        "standby_replicas": standbys,
        "recovery_simulated_s": report.simulated_seconds,
        "records_replayed": report.records_replayed,
        "standby_promotions": report.standby_promotions(),
        "state_exact": state_after == state_before,
    }


def run_all(quick: bool) -> dict:
    updates = 4000 if quick else 8000
    keys = 150 if quick else 400
    tail = 30 if quick else 60
    queries = 200 if quick else 500
    print(f"bench_serving: {updates} updates over {keys} keys, "
          f"{PARTITIONS} partitions, tail={tail}")

    _cluster, runner = build_job(standbys=1, updates=updates, keys=keys,
                                 tail=tail)
    runner.checkpoint()  # warm the standbys before the query workload
    query_report = bench_queries(runner, keys, queries)
    print(f"  get p50={query_report['get_p50_s'] * 1e6:.1f}us "
          f"p99={query_report['get_p99_s'] * 1e6:.1f}us; "
          f"range p99={query_report['range_p99_s'] * 1e6:.1f}us")

    warm = bench_recovery(1, updates, keys, tail)
    cold = bench_recovery(0, updates, keys, tail)
    speedup = (
        cold["recovery_simulated_s"] / warm["recovery_simulated_s"]
        if warm["recovery_simulated_s"] else float(cold["records_replayed"])
    )
    for name, arm in (("standby", warm), ("cold", cold)):
        print(f"  {name}: recovery={arm['recovery_simulated_s'] * 1e3:.3f}ms "
              f"replayed={arm['records_replayed']} "
              f"promotions={arm['standby_promotions']}")
    print(f"  speedup standby-promote vs cold-restore: {speedup:.1f}x")
    return {
        "schema": "bench_serving/v1",
        "quick": quick,
        "python": platform.python_version(),
        "config": {
            "partitions": PARTITIONS,
            "updates": updates,
            "keys": keys,
            "uncheckpointed_tail": tail,
            "seed": SEED,
        },
        "queries": query_report,
        "recovery_standby": warm,
        "recovery_cold": cold,
        "recovery_speedup": speedup,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small workload for CI smoke runs",
    )
    parser.add_argument(
        "--min-recovery-speedup", type=float, default=5.0,
        help="fail unless standby promotion beats cold restore by this "
             "factor (default 5.0; CI gates at 3.0)",
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=DEFAULT_OUTPUT,
        help=f"where to write the JSON report (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)
    report = run_all(args.quick)
    checks = {
        "standby_promote_fast_enough": (
            report["recovery_speedup"] >= args.min_recovery_speedup
        ),
        "standby_replayed_less": (
            report["recovery_standby"]["records_replayed"]
            < report["recovery_cold"]["records_replayed"]
        ),
        "both_recoveries_exact": (
            report["recovery_standby"]["state_exact"]
            and report["recovery_cold"]["state_exact"]
        ),
        "promotions_happened": (
            report["recovery_standby"]["standby_promotions"] == PARTITIONS
        ),
        "query_latency_sane": (
            0.0 < report["queries"]["get_p50_s"]
            <= report["queries"]["get_p99_s"]
        ),
    }
    report["checks"] = checks
    report["min_recovery_speedup"] = args.min_recovery_speedup
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    failed = [name for name, ok in checks.items() if not ok]
    if failed:
        print(f"FAIL: {', '.join(failed)}")
        return 1
    print("all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
